package lrc

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/backoff"
	"repro/internal/clock"
	"repro/internal/disk"
	"repro/internal/rdb"
	"repro/internal/storage"
	"repro/internal/wire"
)

// flakyDialer simulates an RLI that is down (every dial fails) until healed.
type flakyDialer struct {
	mu    sync.Mutex
	down  bool
	dials int
	up    *fakeUpdater
}

func (d *flakyDialer) dial(ctx context.Context, url string) (Updater, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dials++
	if d.down {
		return nil, errors.New("rli unreachable")
	}
	return d.up, nil
}

func (d *flakyDialer) setDown(down bool) {
	d.mu.Lock()
	d.down = down
	d.mu.Unlock()
}

func (d *flakyDialer) dialCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dials
}

func newBreakerTestService(t *testing.T, fc *clock.Fake, d *flakyDialer, mutate func(*Config)) *Service {
	t.Helper()
	eng := storage.OpenMemory(storage.Options{Device: disk.New(disk.Fast())})
	t.Cleanup(func() { eng.Close() })
	db, err := rdb.NewLRCDB(eng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		URL:   "rls://lrc-test",
		DB:    db,
		Dial:  d.dial,
		Clock: fc,
		// Deterministic breaker: 2 strikes, 1-minute probe spacing, no jitter.
		FailThreshold: 2,
		Backoff:       backoff.Policy{Base: time.Minute, Max: 10 * time.Minute, Multiplier: 2, Jitter: 0},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func targetStat(t *testing.T, s *Service, url string) TargetStats {
	t.Helper()
	for _, ts := range s.TargetStats() {
		if ts.URL == url {
			return ts
		}
	}
	t.Fatalf("no TargetStats for %s", url)
	return TargetStats{}
}

// TestBreakerQuarantinesDeadTarget is the regression test for the
// redial-every-round loop: once a target trips the failure threshold, the
// scheduled update passes skip it without dialing until the next half-open
// probe is due, and redial attempts against the dead target stay bounded.
func TestBreakerQuarantinesDeadTarget(t *testing.T) {
	fc := clock.NewFake(time.Unix(1000, 0))
	d := &flakyDialer{down: true, up: newFakeUpdater()}
	s := newBreakerTestService(t, fc, d, nil)
	if err := s.AddRLITarget(ctx, wire.RLITarget{URL: "rls://rli"}); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateMapping(ctx, "lfn://a", "pfn://a1"); err != nil {
		t.Fatal(err)
	}

	// Two failed rounds trip the threshold: healthy → degraded → quarantined.
	s.ForceUpdate(ctx)
	if st := targetStat(t, s, "rls://rli"); st.State != "degraded" {
		t.Fatalf("after 1 failure state = %s, want degraded", st.State)
	}
	s.ForceUpdate(ctx)
	if st := targetStat(t, s, "rls://rli"); st.State != "quarantined" {
		t.Fatalf("after 2 failures state = %s, want quarantined", st.State)
	}
	if d.dialCount() != 2 {
		t.Fatalf("dials = %d, want 2", d.dialCount())
	}

	// While quarantined every scheduled round is skipped: no dials at all.
	for i := 0; i < 5; i++ {
		res := s.ForceUpdate(ctx)
		if len(res) != 1 || !res[0].Skipped {
			t.Fatalf("round %d: result = %+v, want skipped", i, res[0])
		}
	}
	if d.dialCount() != 2 {
		t.Fatalf("dials while quarantined = %d, want 2 (no redials)", d.dialCount())
	}
	st := targetStat(t, s, "rls://rli")
	if st.Skipped != 5 || st.Failed != 2 {
		t.Fatalf("stats = %+v, want Skipped=5 Failed=2", st)
	}

	// After the probe delay one half-open probe is admitted; it fails and
	// the target re-quarantines with a doubled delay.
	fc.Advance(time.Minute)
	res := s.ForceUpdate(ctx)
	if res[0].Skipped || res[0].Err == nil {
		t.Fatalf("probe result = %+v, want a failed send", res[0])
	}
	if d.dialCount() != 3 {
		t.Fatalf("dials after probe = %d, want 3", d.dialCount())
	}
	if st := targetStat(t, s, "rls://rli"); st.State != "quarantined" || st.Probes != 1 {
		t.Fatalf("after failed probe: %+v, want quarantined with Probes=1", st)
	}
	// The next probe is now 2 minutes out: at +1 minute it is still skipped.
	fc.Advance(time.Minute)
	if res := s.ForceUpdate(ctx); !res[0].Skipped {
		t.Fatalf("probe admitted before backed-off deadline: %+v", res[0])
	}

	// Heal the RLI; the next due probe succeeds and restores the target.
	d.setDown(false)
	fc.Advance(time.Minute)
	res = s.ForceUpdate(ctx)
	if res[0].Skipped || res[0].Err != nil {
		t.Fatalf("recovery probe = %+v, want success", res[0])
	}
	st = targetStat(t, s, "rls://rli")
	if st.State != "healthy" || st.ConsecFails != 0 {
		t.Fatalf("after recovery: %+v, want healthy", st)
	}
	// Normal service resumed: the following round sends without skipping.
	if res := s.ForceUpdate(ctx); res[0].Skipped || res[0].Err != nil {
		t.Fatalf("post-recovery round = %+v", res[0])
	}
}

// TestBreakerSkipRequeuesIncrementalDeltas: deltas destined for a
// quarantined target are not lost — they are re-queued for the next flush,
// exactly as for a failed send, just without paying for the dial.
func TestBreakerSkipRequeuesIncrementalDeltas(t *testing.T) {
	fc := clock.NewFake(time.Unix(1000, 0))
	d := &flakyDialer{down: true, up: newFakeUpdater()}
	s := newBreakerTestService(t, fc, d, func(c *Config) {
		c.ImmediateMode = true
		c.ImmediateThreshold = 1
	})
	if err := s.AddRLITarget(ctx, wire.RLITarget{URL: "rls://rli"}); err != nil {
		t.Fatal(err)
	}

	// Two threshold-triggered flushes fail and trip the breaker.
	if err := s.CreateMapping(ctx, "lfn://a", "pfn://a1"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateMapping(ctx, "lfn://b", "pfn://b1"); err != nil {
		t.Fatal(err)
	}
	if st := targetStat(t, s, "rls://rli"); st.State != "quarantined" {
		t.Fatalf("state = %s, want quarantined", st.State)
	}
	dials := d.dialCount()
	requeued := targetStat(t, s, "rls://rli").Requeued

	// The next flush is suppressed by the breaker: no dial, deltas kept.
	if err := s.CreateMapping(ctx, "lfn://c", "pfn://c1"); err != nil {
		t.Fatal(err)
	}
	if d.dialCount() != dials {
		t.Fatalf("quarantined flush dialed (%d -> %d)", dials, d.dialCount())
	}
	if got := s.PendingCount(); got == 0 {
		t.Fatal("deltas for quarantined target were dropped, want requeued")
	}
	st := targetStat(t, s, "rls://rli")
	if st.Requeued <= requeued {
		t.Fatalf("Requeued = %d, want > %d", st.Requeued, requeued)
	}

	// Heal and let the probe deliver the backlog.
	d.setDown(false)
	fc.Advance(time.Minute)
	if err := s.CreateMapping(ctx, "lfn://d", "pfn://d1"); err != nil {
		t.Fatal(err)
	}
	if got := s.PendingCount(); got != 0 {
		t.Fatalf("PendingCount after recovery flush = %d, want 0", got)
	}
	if st := targetStat(t, s, "rls://rli"); st.State != "healthy" {
		t.Fatalf("state after recovery = %s, want healthy", st.State)
	}
}

// TestForceUpdateToBypassesBreaker: an explicit targeted push acts as an
// operator-initiated probe even while the target is quarantined.
func TestForceUpdateToBypassesBreaker(t *testing.T) {
	fc := clock.NewFake(time.Unix(1000, 0))
	d := &flakyDialer{down: true, up: newFakeUpdater()}
	s := newBreakerTestService(t, fc, d, nil)
	if err := s.AddRLITarget(ctx, wire.RLITarget{URL: "rls://rli"}); err != nil {
		t.Fatal(err)
	}
	s.ForceUpdate(ctx)
	s.ForceUpdate(ctx)
	if st := targetStat(t, s, "rls://rli"); st.State != "quarantined" {
		t.Fatalf("state = %s, want quarantined", st.State)
	}
	d.setDown(false)
	res, err := s.ForceUpdateTo(ctx, "rls://rli")
	if err != nil || res.Err != nil {
		t.Fatalf("ForceUpdateTo = %+v, %v", res, err)
	}
	if st := targetStat(t, s, "rls://rli"); st.State != "healthy" {
		t.Fatalf("state after explicit push = %s, want healthy", st.State)
	}
}
