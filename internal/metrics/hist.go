package metrics

import (
	"math/bits"
	"time"
)

// HistRecorder collects operation latencies into a fixed set of
// log-spaced buckets, so memory stays flat no matter how many samples are
// recorded — the open-loop workload engine records tens of millions of
// operations per run, which the exact-sample LatencyRecorder cannot hold.
//
// Bucket layout: durations below 2^logSubBits nanoseconds land in exact
// one-nanosecond buckets; above that, every power-of-two octave is split
// into 2^logSubBits sub-buckets. Worst-case relative error of a reported
// percentile is therefore 2^-logSubBits (~3%), and the true minimum and
// maximum are tracked exactly. Like LatencyRecorder it is not safe for
// concurrent use; keep one per worker and Merge.
type HistRecorder struct {
	counts [logBuckets]uint64
	n      int
	sum    time.Duration
	min    time.Duration
	max    time.Duration
}

const (
	logSubBits = 5
	logSub     = 1 << logSubBits // sub-buckets per octave
	// 63-bit durations span octaves logSubBits..62, one bucket group per
	// octave above the exact region, plus the exact region itself.
	logBuckets = (63 - logSubBits + 1) * logSub
)

// logBucketIndex maps a non-negative duration (ns) to its bucket.
func logBucketIndex(v int64) int {
	if v < logSub {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - 1 // >= logSubBits
	sub := (v >> (uint(exp) - logSubBits)) & (logSub - 1)
	return (exp-logSubBits+1)*logSub + int(sub)
}

// logBucketValue returns the representative duration (bucket midpoint) of a
// bucket index; exact buckets return their value.
func logBucketValue(idx int) time.Duration {
	if idx < logSub {
		return time.Duration(idx)
	}
	g := idx >> logSubBits // octave group, >= 1
	sub := int64(idx & (logSub - 1))
	exp := uint(g + logSubBits - 1)
	lower := int64(1)<<exp + sub<<(exp-logSubBits)
	width := int64(1) << (exp - logSubBits)
	return time.Duration(lower + width/2)
}

// Record adds one latency sample. Negative durations are clamped to zero.
func (r *HistRecorder) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	r.counts[logBucketIndex(int64(d))]++
	if r.n == 0 || d < r.min {
		r.min = d
	}
	if d > r.max {
		r.max = d
	}
	r.n++
	r.sum += d
}

// Merge adds the counts of another recorder.
func (r *HistRecorder) Merge(o *HistRecorder) {
	if o.n == 0 {
		return
	}
	for i, c := range o.counts {
		r.counts[i] += c
	}
	if r.n == 0 || o.min < r.min {
		r.min = o.min
	}
	if o.max > r.max {
		r.max = o.max
	}
	r.n += o.n
	r.sum += o.sum
}

// N returns the sample count.
func (r *HistRecorder) N() int { return r.n }

// quantile returns the representative value of the bucket holding the
// nearest-rank num/den quantile, clamped to the exact [min, max] range.
func (r *HistRecorder) quantile(num, den int) time.Duration {
	target := uint64(rankIndex(r.n, num, den)) + 1 // 1-based rank
	var cum uint64
	for i, c := range r.counts {
		cum += c
		if cum >= target {
			v := logBucketValue(i)
			if v < r.min {
				v = r.min
			}
			if v > r.max {
				v = r.max
			}
			return v
		}
	}
	return r.max
}

// Distribution summarizes the histogram with the same surface as
// LatencyRecorder.Distribution, at bucket resolution (Max is exact).
func (r *HistRecorder) Distribution() Distribution {
	d := Distribution{N: r.n}
	if d.N == 0 {
		return d
	}
	d.Mean = r.sum / time.Duration(r.n)
	d.P50 = r.quantile(50, 100)
	d.P95 = r.quantile(95, 100)
	d.P99 = r.quantile(99, 100)
	d.P999 = r.quantile(999, 1000)
	d.Max = r.max
	return d
}
