// Server-side observability primitives: atomic counters and gauges plus
// fixed-bucket latency histograms, grouped in a Registry. Unlike
// LatencyRecorder (a per-thread, merge-at-the-end harness tool), these are
// safe for concurrent use on the server's hot path: every update is one or
// two atomic adds, and the registry lock is only taken when an instrument is
// first created or a snapshot is built.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomically settable instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets are the histogram upper bounds: exponential from 1µs to ~64s,
// covering everything from in-memory query latencies to WAN soft-state
// updates. An overflow bucket catches the rest.
var histBuckets = buildBuckets()

func buildBuckets() []time.Duration {
	out := make([]time.Duration, 0, 27)
	for d := time.Microsecond; d <= 64*time.Second; d *= 2 {
		out = append(out, d)
	}
	return out
}

// Histogram is a fixed-bucket latency histogram. Observations are two atomic
// adds; percentile extraction walks the buckets under no lock, so a snapshot
// taken during heavy traffic is approximate but never blocks writers.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64 // nanoseconds, monotone
	buckets [28]atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	h.buckets[bucketFor(d)].Add(1)
}

func bucketFor(d time.Duration) int {
	for i, ub := range histBuckets {
		if d <= ub {
			return i
		}
	}
	return len(histBuckets) // overflow bucket
}

// HistogramSnapshot summarizes a histogram at one instant.
type HistogramSnapshot struct {
	Count int64
	Sum   time.Duration
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration
}

// Snapshot extracts counts and nearest-rank percentiles. Percentiles resolve
// to the upper bound of the bucket holding the target rank, so they are
// conservative (never under-report) within one power of two.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		Max:   time.Duration(h.max.Load()),
	}
	if s.Count == 0 {
		return s
	}
	s.Mean = s.Sum / time.Duration(s.Count)
	var counts [28]int64
	total := int64(0)
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return s
	}
	// A quantile of 0 means the rank fell in the overflow bucket (no upper
	// bound); quantiles above Max overstate a sparse top bucket. Both clamp
	// to the observed maximum.
	q := func(pct int64) time.Duration {
		v := bucketQuantile(&counts, total, pct)
		if v == 0 || v > s.Max {
			return s.Max
		}
		return v
	}
	s.P50, s.P95, s.P99 = q(50), q(95), q(99)
	return s
}

// bucketQuantile finds the bucket containing the nearest-rank pct-th
// percentile and returns its upper bound.
func bucketQuantile(counts *[28]int64, total int64, pct int64) time.Duration {
	rank := (total*pct + 99) / 100 // ceil(total*pct/100), 1-based
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i, c := range counts {
		cum += c
		if cum >= rank {
			if i < len(histBuckets) {
				return histBuckets[i]
			}
			break
		}
	}
	return time.Duration(0) // overflow bucket: caller clamps to Max
}

// Registry is a named collection of instruments. Lookup takes the lock only
// on first creation; callers cache the returned pointer for the hot path.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	h = &Histogram{}
	r.hists[name] = h
	return h
}

// RegistrySnapshot is a point-in-time view of every instrument, with stable
// (sorted) ordering for logs and JSON.
type RegistrySnapshot struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures every instrument.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := RegistrySnapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Load()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Load()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Names returns the sorted instrument names of each kind (for stable output).
func (s RegistrySnapshot) Names() (counters, gauges, hists []string) {
	for n := range s.Counters {
		counters = append(counters, n)
	}
	for n := range s.Gauges {
		gauges = append(gauges, n)
	}
	for n := range s.Histograms {
		hists = append(hists, n)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return counters, gauges, hists
}
