package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{42})
	if s.N != 1 || s.Mean != 42 || s.Min != 42 || s.Max != 42 || s.StdDev != 0 {
		t.Fatalf("single summary = %+v", s)
	}
}

func TestSummarizeKnownValues(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	// Sample stddev of this classic set is ~2.138.
	if math.Abs(s.StdDev-2.138) > 0.01 {
		t.Fatalf("stddev = %v", s.StdDev)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestQuickSummarizeBounds(t *testing.T) {
	check := func(samples []float64) bool {
		for i, v := range samples {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			// Keep magnitudes bounded so the sum cannot overflow; rates in
			// practice are small positives.
			samples[i] = math.Mod(v, 1e9)
		}
		s := Summarize(samples)
		if s.N != len(samples) {
			return false
		}
		if s.N > 0 && (s.Mean < s.Min || s.Mean > s.Max) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyDistribution(t *testing.T) {
	var r LatencyRecorder
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	if r.N() != 100 {
		t.Fatalf("N = %d", r.N())
	}
	d := r.Distribution()
	if d.N != 100 {
		t.Fatalf("distribution N = %d", d.N)
	}
	if d.P50 < 45*time.Millisecond || d.P50 > 55*time.Millisecond {
		t.Fatalf("P50 = %v", d.P50)
	}
	if d.P95 < 90*time.Millisecond || d.P95 > 100*time.Millisecond {
		t.Fatalf("P95 = %v", d.P95)
	}
	if d.Max != 100*time.Millisecond {
		t.Fatalf("Max = %v", d.Max)
	}
	if d.Mean != 50500*time.Microsecond {
		t.Fatalf("Mean = %v", d.Mean)
	}
}

func TestLatencyDistributionEmpty(t *testing.T) {
	var r LatencyRecorder
	d := r.Distribution()
	if d.N != 0 || d.Mean != 0 {
		t.Fatalf("empty distribution = %+v", d)
	}
}

func TestLatencyMerge(t *testing.T) {
	var a, b LatencyRecorder
	a.Record(time.Millisecond)
	b.Record(2 * time.Millisecond)
	b.Record(3 * time.Millisecond)
	a.Merge(&b)
	if a.N() != 3 {
		t.Fatalf("merged N = %d", a.N())
	}
}

func TestRate(t *testing.T) {
	if r := Rate(100, time.Second); r != 100 {
		t.Fatalf("Rate = %v", r)
	}
	if r := Rate(100, 0); r != 0 {
		t.Fatalf("Rate with zero elapsed = %v", r)
	}
	if r := Rate(50, 500*time.Millisecond); r != 100 {
		t.Fatalf("Rate = %v", r)
	}
}

func TestPctIndexBounds(t *testing.T) {
	if i := pctIndex(10, 99); i != 9 {
		t.Fatalf("pctIndex(10,99) = %d", i)
	}
	if i := pctIndex(1, 50); i != 0 {
		t.Fatalf("pctIndex(1,50) = %d", i)
	}
	if i := pctIndex(100, 100); i != 99 {
		t.Fatalf("pctIndex(100,100) = %d", i)
	}
}

// TestPctIndexNearestRank pins the nearest-rank definition,
// ceil(n*pct/100)-1, with exact expected indices. The old n*pct/100
// truncation returned index 50 for P50 of 100 samples (off by one) and
// index 0 for P50 of 4 samples (one rank low).
func TestPctIndexNearestRank(t *testing.T) {
	cases := []struct {
		n, pct, want int
	}{
		// n = 1: every percentile is the only sample.
		{1, 50, 0}, {1, 95, 0}, {1, 99, 0}, {1, 100, 0},
		// n = 4: ranks ceil(2)=2, ceil(3.8)=4, ceil(3.96)=4.
		{4, 50, 1}, {4, 95, 3}, {4, 99, 3}, {4, 25, 0}, {4, 75, 2},
		// n = 100: exact multiples must not round up a rank.
		{100, 50, 49}, {100, 95, 94}, {100, 99, 98}, {100, 1, 0}, {100, 100, 99},
		// n = 101: ranks ceil(50.5)=51, ceil(95.95)=96, ceil(99.99)=100.
		{101, 50, 50}, {101, 95, 95}, {101, 99, 99}, {101, 100, 100},
	}
	for _, c := range cases {
		if got := pctIndex(c.n, c.pct); got != c.want {
			t.Errorf("pctIndex(%d, %d) = %d, want %d", c.n, c.pct, got, c.want)
		}
	}
}

// TestDistributionExactPercentiles checks end-to-end percentile values on a
// fully known sample set: 1..100ms must yield P50=50ms, P95=95ms, P99=99ms.
func TestDistributionExactPercentiles(t *testing.T) {
	var r LatencyRecorder
	for i := 1; i <= 100; i++ {
		r.Record(time.Duration(i) * time.Millisecond)
	}
	d := r.Distribution()
	if d.P50 != 50*time.Millisecond {
		t.Errorf("P50 = %v, want 50ms", d.P50)
	}
	if d.P95 != 95*time.Millisecond {
		t.Errorf("P95 = %v, want 95ms", d.P95)
	}
	if d.P99 != 99*time.Millisecond {
		t.Errorf("P99 = %v, want 99ms", d.P99)
	}
}

// TestDistributionDoesNotMutateSamples guards the Distribution/Merge
// interaction: Distribution used to sort the recorder's slice in place, so a
// later Merge interleaved new samples into sorted data (and reordered slices
// the caller still held). Distribution must compute on a copy.
func TestDistributionDoesNotMutateSamples(t *testing.T) {
	var r LatencyRecorder
	in := []time.Duration{5 * time.Millisecond, time.Millisecond, 3 * time.Millisecond}
	for _, d := range in {
		r.Record(d)
	}
	_ = r.Distribution()
	for i, d := range r.samples {
		if d != in[i] {
			t.Fatalf("samples reordered by Distribution: %v", r.samples)
		}
	}

	// Merge after Distribution, then re-compute: the result must reflect
	// every sample, with correct order statistics.
	var o LatencyRecorder
	o.Record(2 * time.Millisecond)
	o.Record(4 * time.Millisecond)
	r.Merge(&o)
	d := r.Distribution()
	if d.N != 5 {
		t.Fatalf("N after merge = %d", d.N)
	}
	if d.Max != 5*time.Millisecond {
		t.Fatalf("Max after merge = %v", d.Max)
	}
	if d.P50 != 3*time.Millisecond { // rank ceil(2.5)=3 of {1,2,3,4,5}
		t.Fatalf("P50 after merge = %v", d.P50)
	}
}
