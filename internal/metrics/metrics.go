// Package metrics provides the small statistics toolkit used by the
// benchmark harness: operation-rate summaries over trials (the paper
// reports "the mean rate over those trials", typically 5) and latency
// distributions.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Summary aggregates a set of sample values.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of the samples.
func Summarize(samples []float64) Summary {
	s := Summary{N: len(samples)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = samples[0], samples[0]
	sum := 0.0
	for _, v := range samples {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		varsum := 0.0
		for _, v := range samples {
			d := v - s.Mean
			varsum += d * d
		}
		s.StdDev = math.Sqrt(varsum / float64(s.N-1))
	}
	return s
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("mean=%.1f sd=%.1f min=%.1f max=%.1f n=%d", s.Mean, s.StdDev, s.Min, s.Max, s.N)
}

// LatencyRecorder collects operation latencies. It is not safe for
// concurrent use; the workload driver keeps one per thread and merges.
type LatencyRecorder struct {
	samples []time.Duration
}

// Record adds one latency sample.
func (r *LatencyRecorder) Record(d time.Duration) {
	r.samples = append(r.samples, d)
}

// Merge appends the samples of another recorder.
func (r *LatencyRecorder) Merge(o *LatencyRecorder) {
	r.samples = append(r.samples, o.samples...)
}

// N returns the sample count.
func (r *LatencyRecorder) N() int { return len(r.samples) }

// Distribution summarizes collected latencies.
type Distribution struct {
	N    int
	Mean time.Duration
	P50  time.Duration
	P95  time.Duration
	P99  time.Duration
	P999 time.Duration
	Max  time.Duration
}

// Distribution computes the latency distribution. The recorder's sample
// slice is left untouched (sorting happens on a copy), so Merge and Record
// remain valid after a Distribution call and slices the caller still holds
// are never reordered underneath it.
func (r *LatencyRecorder) Distribution() Distribution {
	d := Distribution{N: len(r.samples)}
	if d.N == 0 {
		return d
	}
	sorted := make([]time.Duration, d.N)
	copy(sorted, r.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum time.Duration
	for _, v := range sorted {
		sum += v
	}
	d.Mean = sum / time.Duration(d.N)
	d.P50 = sorted[pctIndex(d.N, 50)]
	d.P95 = sorted[pctIndex(d.N, 95)]
	d.P99 = sorted[pctIndex(d.N, 99)]
	d.P999 = sorted[rankIndex(d.N, 999, 1000)]
	d.Max = sorted[d.N-1]
	return d
}

// pctIndex returns the zero-based nearest-rank percentile index:
// ceil(n*pct/100) - 1, clamped to [0, n-1]. The former n*pct/100 truncation
// was off by one for exact multiples (P50 of 100 samples read index 50, not
// 49), skewing every reported percentile upward by one rank.
func pctIndex(n, pct int) int {
	return rankIndex(n, pct, 100)
}

// rankIndex is pctIndex generalized to an arbitrary num/den quantile, so
// per-mille ranks (p99.9) use the same nearest-rank convention.
func rankIndex(n, num, den int) int {
	i := (n*num + den - 1) / den // ceil for non-negative operands
	i--
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// Rate converts an operation count and duration into ops/second.
func Rate(ops int, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(ops) / elapsed.Seconds()
}
