package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops")
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Fatalf("counter = %d", c.Load())
	}
	if r.Counter("ops") != c {
		t.Fatal("Counter did not return the cached instrument")
	}
	g := r.Gauge("conns")
	g.Set(7)
	g.Add(-2)
	if g.Load() != 5 {
		t.Fatalf("gauge = %d", g.Load())
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
	// 90 fast ops (~100µs) and 10 slow ops (~50ms).
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Max != 50*time.Millisecond {
		t.Fatalf("max = %v", s.Max)
	}
	// P50 lands in the fast bucket (upper bound ≥ 100µs but well under 1ms).
	if s.P50 < 100*time.Microsecond || s.P50 >= time.Millisecond {
		t.Fatalf("P50 = %v", s.P50)
	}
	// P95 and P99 land in the slow bucket's power-of-two range.
	if s.P95 < 50*time.Millisecond || s.P95 > 100*time.Millisecond {
		t.Fatalf("P95 = %v", s.P95)
	}
	if s.P99 < 50*time.Millisecond || s.P99 > 100*time.Millisecond {
		t.Fatalf("P99 = %v", s.P99)
	}
	if s.Mean <= 0 || s.Mean > s.Max {
		t.Fatalf("mean = %v", s.Mean)
	}
}

func TestHistogramOverflowClampsToMax(t *testing.T) {
	var h Histogram
	h.Observe(10 * time.Minute) // beyond the last bucket bound
	s := h.Snapshot()
	if s.Max != 10*time.Minute {
		t.Fatalf("max = %v", s.Max)
	}
	if s.P99 != s.Max {
		t.Fatalf("overflow P99 = %v, want clamp to max %v", s.P99, s.Max)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Histogram("lat").Observe(time.Duration(j) * time.Microsecond)
				r.Gauge("g").Set(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Fatalf("counter = %d", got)
	}
	s := r.Snapshot()
	if s.Counters["shared"] != 8000 {
		t.Fatalf("snapshot counter = %d", s.Counters["shared"])
	}
	if s.Histograms["lat"].Count != 8000 {
		t.Fatalf("snapshot hist count = %d", s.Histograms["lat"].Count)
	}
	counters, gauges, hists := s.Names()
	if len(counters) != 1 || len(gauges) != 1 || len(hists) != 1 {
		t.Fatalf("names = %v %v %v", counters, gauges, hists)
	}
}
