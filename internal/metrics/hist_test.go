package metrics

import (
	"math/rand"
	"testing"
	"time"
)

func TestHistIndexRoundTrip(t *testing.T) {
	// Every probe value must land in a bucket whose representative value is
	// within the layout's relative-error bound.
	probes := []int64{0, 1, 5, 31, 32, 33, 100, 1000, 4095, 4096, 65537,
		1_000_000, 123_456_789, 5_000_000_000, int64(time.Hour)}
	for _, v := range probes {
		idx := logBucketIndex(v)
		if idx < 0 || idx >= logBuckets {
			t.Fatalf("logBucketIndex(%d) = %d out of range", v, idx)
		}
		rep := int64(logBucketValue(idx))
		if v < logSub {
			if rep != v {
				t.Fatalf("exact bucket %d has representative %d", v, rep)
			}
			continue
		}
		diff := rep - v
		if diff < 0 {
			diff = -diff
		}
		if float64(diff) > float64(v)/logSub {
			t.Fatalf("logBucketValue(logBucketIndex(%d)) = %d, relative error %.3f",
				v, rep, float64(diff)/float64(v))
		}
	}
}

func TestHistIndexMonotone(t *testing.T) {
	last := -1
	for v := int64(0); v < 1<<14; v++ {
		idx := logBucketIndex(v)
		if idx < last {
			t.Fatalf("logBucketIndex not monotone at %d: %d < %d", v, idx, last)
		}
		last = idx
	}
}

// TestHistMatchesExactRecorder compares histogram percentiles against the
// exact-sample recorder on the same stream: every reported percentile must
// agree within the bucket resolution.
func TestHistMatchesExactRecorder(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var exact LatencyRecorder
	var hist HistRecorder
	for i := 0; i < 200_000; i++ {
		// Log-uniform from ~1µs to ~100ms, the realistic RPC latency range.
		d := time.Duration(float64(time.Microsecond) * (1 + 100_000*rng.Float64()*rng.Float64()))
		exact.Record(d)
		hist.Record(d)
	}
	ed, hd := exact.Distribution(), hist.Distribution()
	if hd.N != ed.N {
		t.Fatalf("N = %d, want %d", hd.N, ed.N)
	}
	if hd.Max != ed.Max {
		t.Fatalf("Max = %v, want exact %v", hd.Max, ed.Max)
	}
	check := func(name string, got, want time.Duration) {
		diff := float64(got - want)
		if diff < 0 {
			diff = -diff
		}
		// Bucket resolution plus nearest-rank wobble: 2/logSub relative.
		if diff > float64(want)*2/logSub {
			t.Errorf("%s = %v, exact %v (off %.1f%%)", name, got, want, 100*diff/float64(want))
		}
	}
	check("P50", hd.P50, ed.P50)
	check("P95", hd.P95, ed.P95)
	check("P99", hd.P99, ed.P99)
	check("P999", hd.P999, ed.P999)
	check("Mean", hd.Mean, ed.Mean)
}

func TestHistMerge(t *testing.T) {
	var a, b, whole HistRecorder
	for i := 0; i < 1000; i++ {
		d := time.Duration(i) * time.Microsecond
		whole.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(&b)
	ad, wd := a.Distribution(), whole.Distribution()
	if ad != wd {
		t.Fatalf("merged distribution %+v != whole %+v", ad, wd)
	}
	// Merging an empty recorder changes nothing.
	var empty HistRecorder
	a.Merge(&empty)
	if a.Distribution() != wd {
		t.Fatal("merging empty recorder changed the distribution")
	}
	empty.Merge(&a)
	if empty.Distribution() != wd {
		t.Fatal("merge into empty lost samples")
	}
}

func TestHistEmptyAndNegative(t *testing.T) {
	var r HistRecorder
	if d := r.Distribution(); d.N != 0 || d.P99 != 0 {
		t.Fatalf("empty distribution = %+v", d)
	}
	r.Record(-5 * time.Second) // clamped, must not panic or go negative
	if r.N() != 1 || r.Distribution().Max != 0 {
		t.Fatalf("negative sample handling: %+v", r.Distribution())
	}
}

// TestHistRecordFlatMemory is the bounded-memory contract: recording must
// never allocate, so a 10M-op run holds the recorder footprint constant.
func TestHistRecordFlatMemory(t *testing.T) {
	var r HistRecorder
	allocs := testing.AllocsPerRun(10_000, func() {
		r.Record(137 * time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f times per op", allocs)
	}
}

func TestHistP999TailVisible(t *testing.T) {
	var r HistRecorder
	for i := 0; i < 9989; i++ {
		r.Record(time.Millisecond)
	}
	for i := 0; i < 11; i++ {
		r.Record(time.Second)
	}
	d := r.Distribution()
	if d.P99 > 10*time.Millisecond {
		t.Fatalf("P99 = %v, tail should not reach it", d.P99)
	}
	if d.P999 < 500*time.Millisecond {
		t.Fatalf("P999 = %v, 0.1%% tail invisible", d.P999)
	}
}
