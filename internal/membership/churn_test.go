package membership

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/disk"
	"repro/internal/lrc"
	"repro/internal/rdb"
	"repro/internal/storage"
)

// nullUpdater satisfies lrc.Updater, discarding all soft state.
type nullUpdater struct{}

func (nullUpdater) SSFullStart(context.Context, string, uint64) error               { return nil }
func (nullUpdater) SSFullBatch(context.Context, string, []string) error             { return nil }
func (nullUpdater) SSFullEnd(context.Context, string) error                         { return nil }
func (nullUpdater) SSIncremental(context.Context, string, []string, []string) error { return nil }
func (nullUpdater) SSBloom(context.Context, string, []byte) error                   { return nil }
func (nullUpdater) Close() error                                                    { return nil }

// TestViewChurnRace hammers RLIGroupSync with concurrent membership churn
// while the LRC is actively mutating and pushing soft state — the shape
// `make stress` runs under -race. The invariant under test is freedom from
// data races plus convergence: once churn stops, the LRC's target set
// matches the final view exactly.
func TestViewChurnRace(t *testing.T) {
	eng := storage.OpenMemory(storage.Options{Device: disk.New(disk.Fast())})
	t.Cleanup(func() { eng.Close() })
	db, err := rdb.NewLRCDB(eng)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := lrc.New(ctx, lrc.Config{
		URL: "rls://lrc-churn",
		DB:  db,
		Dial: func(ctx context.Context, url string) (lrc.Updater, error) {
			return nullUpdater{}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)

	fc := clock.NewFake(time.Unix(0, 0))
	reg := NewRegistry(RegistryConfig{TTL: time.Hour, Clock: fc})
	onView := RLIGroupSync(svc, "g1", true, nil)

	const replicas = 4
	const rounds = 25
	var wg sync.WaitGroup

	// Churner: joins and leaves replicas, pulling + applying a view after
	// each change like an agent would.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			name := fmt.Sprintf("rli-%d", i%replicas)
			if err := reg.HandleJoin(ctx, member(name, "rli")); err != nil {
				t.Error(err)
				return
			}
			if v, err := reg.HandleView(ctx, 0); err == nil && v.Changed {
				onView(v)
			}
			if i%3 == 2 {
				if err := reg.HandleLeave(ctx, name); err != nil {
					t.Error(err)
					return
				}
				if v, err := reg.HandleView(ctx, 0); err == nil && v.Changed {
					onView(v)
				}
			}
		}
	}()

	// A second view applier racing the first (two agents pulling the same
	// registry from different seeds).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if v, err := reg.HandleView(ctx, 0); err == nil && v.Changed {
				onView(v)
			}
		}
	}()

	// Mutator: the LRC keeps registering mappings and fanning out soft
	// state while its target set churns underneath.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if err := svc.CreateMapping(ctx, fmt.Sprintf("lfn://churn-%d", i), "pfn://x"); err != nil {
				t.Error(err)
				return
			}
			svc.ForceUpdate(ctx)
		}
	}()

	wg.Wait()

	// Convergence: apply the final view once more, then the target set must
	// equal the view's group members.
	final, err := reg.HandleView(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	onView(final)
	want := make(map[string]bool)
	for _, m := range GroupMembers(final, "g1") {
		want[m.URL] = true
	}
	targets, err := svc.ListRLITargets(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got := make(map[string]bool)
	for _, tg := range targets {
		got[tg.URL] = true
	}
	if len(got) != len(want) {
		t.Fatalf("target set did not converge: got %v, want %v", got, want)
	}
	for url := range want {
		if !got[url] {
			t.Fatalf("target set missing %s: got %v", url, got)
		}
	}
}
