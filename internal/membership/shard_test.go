package membership

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/client"
)

// typed-error coverage: each malformed-topology class must surface as
// its typed error so operators (and rls-topo) can distinguish a typo
// from a structural problem.

func parseErr(t *testing.T, src string) error {
	t.Helper()
	_, err := Parse(strings.NewReader(src))
	if err == nil {
		t.Fatal("malformed topology accepted")
	}
	return err
}

func TestDuplicateServerTyped(t *testing.T) {
	err := parseErr(t, `{"servers":[{"name":"a","roles":["lrc"]},{"name":"a","roles":["rli"]}]}`)
	var de *DuplicateServerError
	if !errors.As(err, &de) || de.Name != "a" {
		t.Fatalf("err = %v, want DuplicateServerError{a}", err)
	}
}

func TestRLIUpdateLinkErrorsTyped(t *testing.T) {
	base := `{"servers":[{"name":"r1","roles":["rli"]},{"name":"r2","roles":["rli"]},{"name":"l","roles":["lrc"]}],`

	err := parseErr(t, base+`"rli_updates":[{"child":"ghost","parent":"r1"}]}`)
	var ue *UnknownServerError
	if !errors.As(err, &ue) || ue.Name != "ghost" {
		t.Fatalf("unknown child = %v, want UnknownServerError{ghost}", err)
	}

	err = parseErr(t, base+`"rli_updates":[{"child":"l","parent":"r1"}]}`)
	var re *RoleError
	if !errors.As(err, &re) || re.Name != "l" || re.Role != "rli" {
		t.Fatalf("lrc as child = %v, want RoleError{l, rli}", err)
	}

	err = parseErr(t, base+`"rli_updates":[{"child":"r1","parent":"r1"}]}`)
	var se *SelfForwardError
	if !errors.As(err, &se) || se.Name != "r1" {
		t.Fatalf("self link = %v, want SelfForwardError{r1}", err)
	}
}

func TestUpdateLinkErrorsTyped(t *testing.T) {
	base := `{"servers":[{"name":"l","roles":["lrc"]},{"name":"r","roles":["rli"]}],`

	err := parseErr(t, base+`"updates":[{"lrc":"nope","rli":"r"}]}`)
	var ue *UnknownServerError
	if !errors.As(err, &ue) || ue.Name != "nope" {
		t.Fatalf("unknown lrc = %v, want UnknownServerError{nope}", err)
	}

	err = parseErr(t, base+`"updates":[{"lrc":"r","rli":"r"}]}`)
	var re *RoleError
	if !errors.As(err, &re) || re.Name != "r" || re.Role != "lrc" {
		t.Fatalf("rli as lrc = %v, want RoleError{r, lrc}", err)
	}
}

func TestShardGroupErrorsTyped(t *testing.T) {
	servers := `{"servers":[
	  {"name":"a","roles":["lrc"]},{"name":"b","roles":["lrc"]},
	  {"name":"c","roles":["lrc"]},{"name":"r","roles":["rli"]}],`

	cases := []struct {
		name   string
		shards string
		check  func(error) bool
	}{
		{"unnamed group", `[{"name":"","lrcs":["a"]}]`, func(err error) bool {
			var oe *ShardOwnershipError
			return errors.As(err, &oe) && oe.Group == "#0"
		}},
		{"duplicate group", `[{"name":"g","lrcs":["a"]},{"name":"g","lrcs":["b"]}]`, func(err error) bool {
			var oe *ShardOwnershipError
			return errors.As(err, &oe) && oe.Group == "g"
		}},
		{"empty group", `[{"name":"g","lrcs":[]}]`, func(err error) bool {
			var oe *ShardOwnershipError
			return errors.As(err, &oe) && oe.Group == "g"
		}},
		{"unknown member", `[{"name":"g","lrcs":["ghost"]}]`, func(err error) bool {
			var ue *UnknownServerError
			return errors.As(err, &ue) && ue.Name == "ghost"
		}},
		{"rli member", `[{"name":"g","lrcs":["r"]}]`, func(err error) bool {
			var re *RoleError
			return errors.As(err, &re) && re.Name == "r" && re.Role == "lrc"
		}},
		{"member listed twice", `[{"name":"g","lrcs":["a","a"]}]`, func(err error) bool {
			var oe *ShardOwnershipError
			return errors.As(err, &oe) && oe.Name == "a" && oe.Group == "g"
		}},
		{"member in two groups", `[{"name":"g1","lrcs":["a","b"]},{"name":"g2","lrcs":["b","c"]}]`, func(err error) bool {
			var oe *ShardOwnershipError
			return errors.As(err, &oe) && oe.Name == "b" && oe.Group == "g2"
		}},
	}
	for _, c := range cases {
		err := parseErr(t, servers+`"shards":`+c.shards+`}`)
		if !c.check(err) {
			t.Errorf("%s: err = %v (wrong type or fields)", c.name, err)
		}
	}
}

// TestShardTopologyBuild: a topology with a shard group builds a tier
// whose members enforce ring ownership — a mutation routed to the wrong
// shard is rejected as a bad request, the owner accepts it, and reads
// work everywhere.
func TestShardTopologyBuild(t *testing.T) {
	ctx := context.Background()
	topo, err := Parse(strings.NewReader(`{
	  "servers": [
	    {"name": "s0", "roles": ["lrc"], "fast_disk": true},
	    {"name": "s1", "roles": ["lrc"], "fast_disk": true},
	    {"name": "s2", "roles": ["lrc"], "fast_disk": true},
	    {"name": "rli0", "roles": ["rli"], "fast_disk": true}
	  ],
	  "updates": [
	    {"lrc": "s0", "rli": "rli0"},
	    {"lrc": "s1", "rli": "rli0"},
	    {"lrc": "s2", "rli": "rli0"}
	  ],
	  "shards": [{"name": "tier", "lrcs": ["s0", "s1", "s2"]}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	// Every member carries the same ring under its own identity.
	node, ok := dep.Node("s0")
	if !ok {
		t.Fatal("no node s0")
	}
	rg, self := node.LRC.Shard()
	if rg == nil || self != "s0" {
		t.Fatalf("s0 shard identity = %v, %q", rg, self)
	}

	lfn := "lfn://shardtopo/file-1"
	owner := rg.Owner(lfn)
	var wrong string
	for _, n := range rg.Nodes() {
		if n != owner {
			wrong = n
			break
		}
	}

	wc, err := dep.Dial(wrong)
	if err != nil {
		t.Fatal(err)
	}
	defer wc.Close()
	if err := wc.CreateMapping(ctx, lfn, "pfn://x"); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("misrouted create = %v, want ErrBadRequest", err)
	}

	oc, err := dep.Dial(owner)
	if err != nil {
		t.Fatal(err)
	}
	defer oc.Close()
	if err := oc.CreateMapping(ctx, lfn, "pfn://x"); err != nil {
		t.Fatalf("owner rejected its own name: %v", err)
	}
	// Reads are not ownership-checked: the non-owner answers (not found)
	// rather than rejecting, so reverse and scattered queries work
	// against every member.
	if _, err := wc.GetTargets(ctx, lfn); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("read on non-owner = %v, want ErrNotFound", err)
	}
	targets, err := oc.GetTargets(ctx, lfn)
	if err != nil || len(targets) != 1 {
		t.Fatalf("owner read = %v, %v", targets, err)
	}
}
