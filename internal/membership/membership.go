// Package membership implements the static configuration management of RLS
// 2.0.9 (§3.6): "Our current implementation does not include a membership
// service ... Instead, we use a simple static configuration of LRCs and
// RLIs."
//
// A topology file (JSON) declares the servers of a Replica Location Service
// and the update relationships between LRCs and RLIs. Build instantiates
// the topology as a core.Deployment. Runtime changes remain possible
// through the lrc_rli_add / lrc_rli_remove operations, exactly as in the
// paper's implementation.
package membership

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/netsim"
	"repro/internal/ring"
	"repro/internal/storage"
)

// Topology is the static configuration of a Replica Location Service.
type Topology struct {
	Servers []ServerConfig `json:"servers"`
	Updates []UpdateLink   `json:"updates"`
	// RLIUpdates wires hierarchical RLIs (child forwards to parent).
	RLIUpdates []RLILink `json:"rli_updates,omitempty"`
	// Shards partitions the LFN namespace across groups of LRCs by
	// consistent hashing: each group's members share one ring, each
	// member owns its slice and rejects mutations for names it does not
	// own. Clients route with client.Router built over the same member
	// list and virtual-node count.
	Shards []ShardGroup `json:"shards,omitempty"`
}

// ShardGroup declares one sharded LRC tier: the member LRCs share a
// consistent-hash ring over their names. An LRC may belong to at most
// one group — ownership of a logical name must be unique.
type ShardGroup struct {
	Name string   `json:"name"`
	LRCs []string `json:"lrcs"`
	// VNodes is the virtual-node count per member (0 = ring default).
	// Clients must use the same value.
	VNodes int `json:"vnodes,omitempty"`
}

// RLILink declares that one RLI forwards its aggregated state to another
// (the paper's §7 hierarchy extension).
type RLILink struct {
	Child  string `json:"child"`
	Parent string `json:"parent"`
}

// ServerConfig declares one server.
type ServerConfig struct {
	Name string `json:"name"`
	// Roles lists "lrc", "rli" or both.
	Roles []string `json:"roles"`
	// Listen starts a TCP listener (127.0.0.1, ephemeral port).
	Listen bool `json:"listen,omitempty"`
	// ListenAddr starts a TCP listener on an explicit host:port.
	ListenAddr string `json:"listen_addr,omitempty"`
	// Net selects connection shaping: "", "none", "lan" or "wan".
	Net string `json:"net,omitempty"`
	// Backend selects the database personality: "", "mysql" or "postgres".
	Backend string `json:"backend,omitempty"`
	// FlushOnCommit enables the per-transaction database flush.
	FlushOnCommit bool `json:"flush_on_commit,omitempty"`
	// FastDisk disables the simulated 2004-era device costs.
	FastDisk bool `json:"fast_disk,omitempty"`
	// DataDir persists the databases under this directory.
	DataDir string `json:"data_dir,omitempty"`
	// ImmediateMode enables incremental soft state updates.
	ImmediateMode bool `json:"immediate_mode,omitempty"`
	// ImmediateIntervalSeconds overrides the 30s default.
	ImmediateIntervalSeconds int `json:"immediate_interval_seconds,omitempty"`
	// FullIntervalSeconds enables periodic full updates.
	FullIntervalSeconds int `json:"full_interval_seconds,omitempty"`
	// RLITimeoutSeconds overrides the soft state timeout.
	RLITimeoutSeconds int `json:"rli_timeout_seconds,omitempty"`
}

// UpdateLink declares that an LRC updates an RLI.
type UpdateLink struct {
	LRC string `json:"lrc"`
	RLI string `json:"rli"`
	// Bloom selects Bloom filter updates instead of uncompressed ones.
	Bloom bool `json:"bloom,omitempty"`
	// Patterns are namespace-partition regular expressions.
	Patterns []string `json:"patterns,omitempty"`
}

// Parse reads a topology from JSON.
func Parse(r io.Reader) (*Topology, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var t Topology
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("membership: parse: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// ParseFile reads a topology from a file.
func ParseFile(path string) (*Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Parse(f)
}

// Validate checks internal consistency.
func (t *Topology) Validate() error {
	if len(t.Servers) == 0 {
		return fmt.Errorf("membership: topology has no servers")
	}
	byName := make(map[string]*ServerConfig, len(t.Servers))
	for i := range t.Servers {
		s := &t.Servers[i]
		if s.Name == "" {
			return fmt.Errorf("membership: server %d has no name", i)
		}
		if _, dup := byName[s.Name]; dup {
			return &DuplicateServerError{Name: s.Name}
		}
		byName[s.Name] = s
		if len(s.Roles) == 0 {
			return fmt.Errorf("membership: server %q has no roles", s.Name)
		}
		for _, r := range s.Roles {
			if r != "lrc" && r != "rli" {
				return fmt.Errorf("membership: server %q has unknown role %q", s.Name, r)
			}
		}
		switch s.Net {
		case "", "none", "lan", "wan":
		default:
			return fmt.Errorf("membership: server %q has unknown net profile %q", s.Name, s.Net)
		}
		switch s.Backend {
		case "", "mysql", "postgres":
		default:
			return fmt.Errorf("membership: server %q has unknown backend %q", s.Name, s.Backend)
		}
	}
	for i, l := range t.RLIUpdates {
		ctx := fmt.Sprintf("rli update %d", i)
		child, ok := byName[l.Child]
		if !ok {
			return &UnknownServerError{Context: ctx, Name: l.Child}
		}
		if !hasRole(child, "rli") {
			return &RoleError{Context: ctx, Name: l.Child, Role: "rli"}
		}
		parent, ok := byName[l.Parent]
		if !ok {
			return &UnknownServerError{Context: ctx, Name: l.Parent}
		}
		if !hasRole(parent, "rli") {
			return &RoleError{Context: ctx, Name: l.Parent, Role: "rli"}
		}
		if l.Child == l.Parent {
			return &SelfForwardError{Name: l.Child}
		}
	}
	for i, u := range t.Updates {
		ctx := fmt.Sprintf("update %d", i)
		lrcSrv, ok := byName[u.LRC]
		if !ok {
			return &UnknownServerError{Context: ctx, Name: u.LRC}
		}
		if !hasRole(lrcSrv, "lrc") {
			return &RoleError{Context: ctx, Name: u.LRC, Role: "lrc"}
		}
		rliSrv, ok := byName[u.RLI]
		if !ok {
			return &UnknownServerError{Context: ctx, Name: u.RLI}
		}
		if !hasRole(rliSrv, "rli") {
			return &RoleError{Context: ctx, Name: u.RLI, Role: "rli"}
		}
		for _, p := range u.Patterns {
			if _, err := regexp.Compile(p); err != nil {
				return fmt.Errorf("membership: update %d: bad pattern %q: %w", i, p, err)
			}
		}
	}
	owned := make(map[string]string) // lrc name -> owning group
	groups := make(map[string]bool)
	for i, g := range t.Shards {
		if g.Name == "" {
			return &ShardOwnershipError{Group: fmt.Sprintf("#%d", i), Reason: "group has no name"}
		}
		if groups[g.Name] {
			return &ShardOwnershipError{Group: g.Name, Reason: "group declared twice"}
		}
		groups[g.Name] = true
		if len(g.LRCs) == 0 {
			return &ShardOwnershipError{Group: g.Name, Reason: "group owns no LRCs"}
		}
		ctx := fmt.Sprintf("shard group %q", g.Name)
		for _, name := range g.LRCs {
			srv, ok := byName[name]
			if !ok {
				return &UnknownServerError{Context: ctx, Name: name}
			}
			if !hasRole(srv, "lrc") {
				return &RoleError{Context: ctx, Name: name, Role: "lrc"}
			}
			if prev, dup := owned[name]; dup {
				reason := "listed twice in the group"
				if prev != g.Name {
					reason = fmt.Sprintf("already owned by shard group %q", prev)
				}
				return &ShardOwnershipError{Group: g.Name, Name: name, Reason: reason}
			}
			owned[name] = g.Name
		}
	}
	return nil
}

func hasRole(s *ServerConfig, role string) bool {
	for _, r := range s.Roles {
		if r == role {
			return true
		}
	}
	return false
}

// netProfile maps a config name to a shaping profile.
func netProfile(name string) netsim.Profile {
	switch name {
	case "lan":
		return netsim.LAN()
	case "wan":
		return netsim.WAN()
	default:
		return netsim.Unshaped()
	}
}

// Build instantiates the topology as a running deployment.
func (t *Topology) Build() (*core.Deployment, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	// Shard rings must exist before their member servers start: the
	// lrc service takes its ring identity at construction time.
	type shardIdentity struct {
		ring *ring.Ring
		self string
	}
	shardOf := make(map[string]shardIdentity)
	for _, g := range t.Shards {
		rg, err := ring.New(g.LRCs, g.VNodes)
		if err != nil {
			return nil, fmt.Errorf("membership: shard group %q: %w", g.Name, err)
		}
		for _, name := range g.LRCs {
			shardOf[name] = shardIdentity{ring: rg, self: name}
		}
	}
	d := core.NewDeployment()
	for _, s := range t.Servers {
		spec := core.ServerSpec{
			Name:          s.Name,
			LRC:           hasRole(&s, "lrc"),
			RLI:           hasRole(&s, "rli"),
			Listen:        s.Listen,
			ListenAddr:    s.ListenAddr,
			Net:           netProfile(s.Net),
			FlushOnCommit: s.FlushOnCommit,
			DataDir:       s.DataDir,
			ImmediateMode: s.ImmediateMode,
		}
		if s.Backend == "postgres" {
			spec.Personality = storage.PersonalityPostgres
		}
		if s.FastDisk {
			fast := disk.Fast()
			spec.Disk = &fast
		}
		if s.ImmediateIntervalSeconds > 0 {
			spec.ImmediateInterval = time.Duration(s.ImmediateIntervalSeconds) * time.Second
		}
		if s.FullIntervalSeconds > 0 {
			spec.FullInterval = time.Duration(s.FullIntervalSeconds) * time.Second
		}
		if s.RLITimeoutSeconds > 0 {
			spec.RLITimeout = time.Duration(s.RLITimeoutSeconds) * time.Second
		}
		if id, ok := shardOf[s.Name]; ok {
			spec.ShardRing = id.ring
			spec.ShardSelf = id.self
		}
		if _, err := d.AddServer(spec); err != nil {
			d.Close()
			return nil, err
		}
	}
	for _, u := range t.Updates {
		if err := d.Connect(u.LRC, u.RLI, u.Bloom, u.Patterns...); err != nil {
			d.Close()
			return nil, err
		}
	}
	for _, l := range t.RLIUpdates {
		if err := d.ConnectRLI(l.Child, l.Parent); err != nil {
			d.Close()
			return nil, err
		}
	}
	return d, nil
}
