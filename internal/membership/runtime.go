package membership

import (
	"context"
	"io"
	"log/slog"
	"sync"

	"repro/internal/lrc"
	"repro/internal/wire"
)

// HasRole reports whether the member advertises the role.
func HasRole(m wire.MemberInfo, role string) bool {
	for _, r := range m.Roles {
		if r == role {
			return true
		}
	}
	return false
}

// GroupMembers filters a view down to the RLI replicas of one group, in
// view (name-sorted) order.
func GroupMembers(view *wire.MemberViewResponse, group string) []wire.MemberInfo {
	var out []wire.MemberInfo
	for _, m := range view.Members {
		if m.Group == group && HasRole(m, "rli") {
			out = append(out, m)
		}
	}
	return out
}

// RLIGroupSync returns an Agent OnView callback that keeps an LRC's RLI
// target set synchronized with the live replicas of one group: every
// replica in the view becomes a soft-state target (the replica fanout — all
// replicas receive the LRC's updates, so any of them can answer), and
// replicas that drop out of the view are removed. Only targets this
// callback added are ever removed, so statically configured targets
// coexist with runtime-discovered ones.
func RLIGroupSync(svc *lrc.Service, group string, bloomMode bool, log *slog.Logger) func(*wire.MemberViewResponse) {
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	var mu sync.Mutex
	managed := make(map[string]bool)
	return func(view *wire.MemberViewResponse) {
		desired := make(map[string]bool)
		for _, m := range GroupMembers(view, group) {
			desired[m.URL] = true
		}
		mu.Lock()
		defer mu.Unlock()
		ctx := context.Background()
		for url := range desired {
			if managed[url] {
				continue
			}
			if err := svc.AddRLITarget(ctx, wire.RLITarget{URL: url, Bloom: bloomMode}); err != nil {
				log.Warn("membership: add runtime RLI target failed", "url", url, "err", err)
				continue
			}
			managed[url] = true
			log.Info("membership: runtime RLI target added", "lrc", svc.URL(), "url", url)
		}
		for url := range managed {
			if desired[url] {
				continue
			}
			if err := svc.RemoveRLITarget(ctx, url); err != nil {
				log.Warn("membership: remove runtime RLI target failed", "url", url, "err", err)
			}
			delete(managed, url)
			log.Info("membership: runtime RLI target removed", "lrc", svc.URL(), "url", url)
		}
	}
}
