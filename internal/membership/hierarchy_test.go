package membership

import (
	"context"
	"strings"
	"testing"
)

const hierarchyTopology = `{
  "servers": [
    {"name": "lrc0", "roles": ["lrc"], "fast_disk": true},
    {"name": "leaf", "roles": ["rli"], "fast_disk": true},
    {"name": "root", "roles": ["rli"], "fast_disk": true}
  ],
  "updates": [
    {"lrc": "lrc0", "rli": "leaf"}
  ],
  "rli_updates": [
    {"child": "leaf", "parent": "root"}
  ]
}`

func TestHierarchyTopologyBuilds(t *testing.T) {
	ctx := context.Background()
	topo, err := Parse(strings.NewReader(hierarchyTopology))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	c, err := dep.Dial("lrc0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateMapping(ctx, "lfn://h/x", "pfn://x"); err != nil {
		t.Fatal(err)
	}
	lnode, _ := dep.Node("lrc0")
	for _, res := range lnode.LRC.ForceUpdate(ctx) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	leaf, _ := dep.Node("leaf")
	for _, res := range leaf.RLI.ForwardAll(ctx) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	rc, err := dep.Dial("root")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	lrcs, err := rc.RLIQuery(ctx, "lfn://h/x")
	if err != nil || len(lrcs) != 1 || lrcs[0] != "rls://lrc0" {
		t.Fatalf("root query = %v, %v", lrcs, err)
	}
}

func TestHierarchyValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"unknown child", `{"servers":[{"name":"r","roles":["rli"]}],"rli_updates":[{"child":"zz","parent":"r"}]}`},
		{"unknown parent", `{"servers":[{"name":"r","roles":["rli"]}],"rli_updates":[{"child":"r","parent":"zz"}]}`},
		{"child not rli", `{"servers":[{"name":"l","roles":["lrc"]},{"name":"r","roles":["rli"]}],"rli_updates":[{"child":"l","parent":"r"}]}`},
		{"parent not rli", `{"servers":[{"name":"l","roles":["lrc"]},{"name":"r","roles":["rli"]}],"rli_updates":[{"child":"r","parent":"l"}]}`},
		{"self loop", `{"servers":[{"name":"r","roles":["rli"]}],"rli_updates":[{"child":"r","parent":"r"}]}`},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.json)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
