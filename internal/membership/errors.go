package membership

import "fmt"

// Typed validation errors. Tooling that loads topology files (the CLIs,
// deployment scripts, tests) needs to distinguish *what* is wrong with
// a topology — a duplicated server, a dangling reference, a role
// mismatch, a broken shard partition — without string-matching error
// text. Validate returns these via errors.As; the messages stay
// human-first for the CLI path.

// DuplicateServerError reports two servers declared with the same name.
type DuplicateServerError struct {
	Name string
}

// Error implements error.
func (e *DuplicateServerError) Error() string {
	return fmt.Sprintf("membership: duplicate server name %q", e.Name)
}

// UnknownServerError reports a reference (update link, rli_updates
// link, shard group) to a server the topology does not declare.
type UnknownServerError struct {
	// Context locates the reference, e.g. `update 2`, `shard group "a"`.
	Context string
	Name    string
}

// Error implements error.
func (e *UnknownServerError) Error() string {
	return fmt.Sprintf("membership: %s references unknown server %q", e.Context, e.Name)
}

// RoleError reports a server referenced in a position requiring a role
// it does not have (an update link's LRC side naming an RLI-only
// server, a shard group member without the lrc role, ...).
type RoleError struct {
	Context string
	Name    string
	Role    string // the missing role: "lrc" or "rli"
}

// Error implements error.
func (e *RoleError) Error() string {
	return fmt.Sprintf("membership: %s: server %q is not an %s", e.Context, e.Name, e.Role)
}

// ShardOwnershipError reports a broken shard partition: an empty group,
// or an LRC claimed by two groups (or twice by one) — either way the
// LFN namespace would not have exactly one owner per name.
type ShardOwnershipError struct {
	Group  string
	Name   string // the offending LRC; empty for group-level problems
	Reason string
}

// Error implements error.
func (e *ShardOwnershipError) Error() string {
	if e.Name == "" {
		return fmt.Sprintf("membership: shard group %q: %s", e.Group, e.Reason)
	}
	return fmt.Sprintf("membership: shard group %q: lrc %q: %s", e.Group, e.Name, e.Reason)
}

// SelfForwardError reports an rli_updates link whose child and parent
// are the same server — a forwarding loop of length one.
type SelfForwardError struct {
	Name string
}

// Error implements error.
func (e *SelfForwardError) Error() string {
	return fmt.Sprintf("membership: rli update: %q forwards to itself", e.Name)
}
