package membership

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/wire"
)

// Agent defaults.
const (
	DefaultHeartbeatInterval = 2 * time.Second
	DefaultPullInterval      = 3 * time.Second
	// agentOpTimeout bounds each seed RPC so a wedged seed cannot stall the
	// agent loop past the next tick.
	agentOpTimeout = 5 * time.Second
)

// MemberClient is the seed-facing RPC surface the agent needs;
// client.Client satisfies it.
type MemberClient interface {
	MemberJoin(ctx context.Context, m wire.MemberInfo) error
	MemberLeave(ctx context.Context, name string) error
	MemberHeartbeat(ctx context.Context, name string) error
	MemberView(ctx context.Context, since uint64) (*wire.MemberViewResponse, error)
	Close() error
}

// AgentConfig configures a node-side membership agent.
type AgentConfig struct {
	// Self is this node's registration record.
	Self wire.MemberInfo
	// Seeds are the seed servers' urls, tried in order until one answers.
	Seeds []string
	// Dial opens a connection to a seed.
	Dial func(ctx context.Context, url string) (MemberClient, error)
	// HeartbeatInterval is the lease-renewal period; it must be comfortably
	// below the registry TTL. DefaultHeartbeatInterval if zero.
	HeartbeatInterval time.Duration
	// PullInterval is the anti-entropy view-pull period.
	// DefaultPullInterval if zero.
	PullInterval time.Duration
	// OnView is called (from the agent goroutine) with every view whose
	// generation advanced past the last one seen. Optional.
	OnView func(view *wire.MemberViewResponse)
	// Clock drives the tickers; defaults to the real clock.
	Clock clock.Clock
	// Logger receives agent diagnostics. Nil discards.
	Logger *slog.Logger
}

// Agent keeps one node registered with the seed tier: it joins on start,
// heartbeats to renew its lease (re-joining when the seed reports the lease
// expired), periodically pulls generation-numbered views for anti-entropy,
// and best-effort leaves on close. One goroutine, one cached seed
// connection rotated on failure.
type Agent struct {
	cfg AgentConfig
	clk clock.Clock
	log *slog.Logger

	mu   sync.Mutex
	conn MemberClient // cached connection to seeds[seedIdx]
	seed int          // index of the seed conn talks to
	gen  uint64       // last view generation applied
	st   AgentStats

	stop chan struct{}
	wg   sync.WaitGroup
}

// AgentStats counts agent activity.
type AgentStats struct {
	Joins      int64
	Heartbeats int64
	Rejoins    int64
	ViewsSeen  int64
	SeedErrors int64
}

// NewAgent creates an agent. Call Start to run it.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Self.Name == "" || cfg.Self.URL == "" {
		return nil, errors.New("membership: agent needs Self.Name and Self.URL")
	}
	if len(cfg.Seeds) == 0 {
		return nil, errors.New("membership: agent needs at least one seed")
	}
	if cfg.Dial == nil {
		return nil, errors.New("membership: agent needs a Dial function")
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = DefaultHeartbeatInterval
	}
	if cfg.PullInterval <= 0 {
		cfg.PullInterval = DefaultPullInterval
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Agent{
		cfg:  cfg,
		clk:  cfg.Clock,
		log:  cfg.Logger,
		stop: make(chan struct{}),
	}, nil
}

// Start joins the seed tier and launches the heartbeat/anti-entropy loop.
// The initial join is attempted synchronously so a deployment helper can
// sequence "agent started" with "member visible"; failure is not fatal —
// the loop keeps retrying via the heartbeat path.
func (a *Agent) Start(ctx context.Context) error {
	err := a.join(ctx)
	a.wg.Add(1)
	go a.run()
	return err
}

// Close stops the loop and best-effort deregisters. Safe to call more than
// once; only the first call leaves.
func (a *Agent) Close() {
	var leave bool
	select {
	case <-a.stop:
	default:
		close(a.stop)
		leave = true
	}
	a.wg.Wait()
	if !leave {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), agentOpTimeout)
	defer cancel()
	_ = a.withSeed(ctx, func(ctx context.Context, mc MemberClient) error {
		return mc.MemberLeave(ctx, a.cfg.Self.Name)
	})
	a.mu.Lock()
	if a.conn != nil {
		_ = a.conn.Close()
		a.conn = nil
	}
	a.mu.Unlock()
}

// run is the agent goroutine: heartbeat and view-pull tickers under one
// select, stopped by Close.
func (a *Agent) run() {
	defer a.wg.Done()
	hb := a.clk.NewTicker(a.cfg.HeartbeatInterval)
	defer hb.Stop()
	pull := a.clk.NewTicker(a.cfg.PullInterval)
	defer pull.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-hb.C():
			a.heartbeat()
		case <-pull.C():
			a.pullView()
		}
	}
}

// withSeed runs one RPC against the cached seed connection, dialing seeds
// in rotation until one answers. A failed call drops the cached connection
// so the next attempt rotates to the following seed.
func (a *Agent) withSeed(ctx context.Context, fn func(context.Context, MemberClient) error) error {
	var lastErr error
	for attempt := 0; attempt < len(a.cfg.Seeds); attempt++ {
		a.mu.Lock()
		mc := a.conn
		idx := a.seed
		a.mu.Unlock()
		if mc == nil {
			url := a.cfg.Seeds[idx%len(a.cfg.Seeds)]
			dialed, err := a.cfg.Dial(ctx, url)
			if err != nil {
				lastErr = err
				a.mu.Lock()
				a.seed = (idx + 1) % len(a.cfg.Seeds)
				a.st.SeedErrors++
				a.mu.Unlock()
				continue
			}
			a.mu.Lock()
			a.conn = dialed
			a.mu.Unlock()
			mc = dialed
		}
		err := fn(ctx, mc)
		if err == nil || isStatusError(err) {
			// A typed server status means the seed answered: the connection
			// is healthy even when the operation failed.
			return err
		}
		lastErr = err
		a.mu.Lock()
		if a.conn == mc {
			a.conn = nil
			a.seed = (idx + 1) % len(a.cfg.Seeds)
		}
		a.st.SeedErrors++
		a.mu.Unlock()
		_ = mc.Close()
	}
	return lastErr
}

// statusCoded matches client.StatusError without importing the client
// package (membership must stay importable from core's dependents).
type statusCoded interface{ StatusCode() uint16 }

func isStatusError(err error) bool {
	var sc statusCoded
	return errors.As(err, &sc)
}

func (a *Agent) join(ctx context.Context) error {
	ctx, cancel := context.WithTimeout(ctx, agentOpTimeout)
	defer cancel()
	err := a.withSeed(ctx, func(ctx context.Context, mc MemberClient) error {
		return mc.MemberJoin(ctx, a.cfg.Self)
	})
	a.mu.Lock()
	if err == nil {
		a.st.Joins++
	}
	a.mu.Unlock()
	if err != nil {
		a.log.Warn("membership: join failed", "self", a.cfg.Self.Name, "err", err)
	}
	return err
}

// heartbeat renews the lease; a not-found answer means the seed expired the
// member (or never saw it), so the agent re-joins.
func (a *Agent) heartbeat() {
	ctx, cancel := context.WithTimeout(context.Background(), agentOpTimeout)
	defer cancel()
	err := a.withSeed(ctx, func(ctx context.Context, mc MemberClient) error {
		return mc.MemberHeartbeat(ctx, a.cfg.Self.Name)
	})
	switch {
	case err == nil:
		a.mu.Lock()
		a.st.Heartbeats++
		a.mu.Unlock()
	case isNotFound(err):
		a.mu.Lock()
		a.st.Rejoins++
		a.mu.Unlock()
		_ = a.join(context.Background())
	default:
		a.log.Warn("membership: heartbeat failed", "self", a.cfg.Self.Name, "err", err)
	}
}

func isNotFound(err error) bool {
	var sc statusCoded
	if errors.As(err, &sc) {
		return sc.StatusCode() == uint16(wire.StatusNotFound)
	}
	return false
}

// pullView fetches the seed's view and applies it when the generation
// advanced — the anti-entropy path that heals missed changes regardless of
// which seed saw them.
func (a *Agent) pullView() {
	ctx, cancel := context.WithTimeout(context.Background(), agentOpTimeout)
	defer cancel()
	a.mu.Lock()
	since := a.gen
	a.mu.Unlock()
	var view *wire.MemberViewResponse
	err := a.withSeed(ctx, func(ctx context.Context, mc MemberClient) error {
		v, err := mc.MemberView(ctx, since)
		view = v
		return err
	})
	if err != nil {
		a.log.Warn("membership: view pull failed", "self", a.cfg.Self.Name, "err", err)
		return
	}
	if view == nil || !view.Changed {
		return
	}
	a.mu.Lock()
	if view.Generation <= a.gen {
		a.mu.Unlock()
		return
	}
	a.gen = view.Generation
	a.st.ViewsSeen++
	a.mu.Unlock()
	a.log.Info("membership: view advanced", "self", a.cfg.Self.Name,
		"generation", view.Generation, "members", len(view.Members))
	if a.cfg.OnView != nil {
		a.cfg.OnView(view)
	}
}

// PullNow forces one synchronous view pull (tests and bootstrap
// sequencing).
func (a *Agent) PullNow() { a.pullView() }

// Generation returns the last view generation applied.
func (a *Agent) Generation() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.gen
}

// Stats returns a snapshot of agent counters.
func (a *Agent) Stats() AgentStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.st
}
