package membership

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/rdb"
	"repro/internal/wire"
)

func member(name string, roles ...string) wire.MemberInfo {
	return wire.MemberInfo{Name: name, URL: "rls://" + name, Roles: roles, Group: "g1"}
}

func TestRegistryJoinViewGenerations(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	r := NewRegistry(RegistryConfig{Clock: fc})
	ctx := context.Background()

	if gen := r.Generation(); gen != 0 {
		t.Fatalf("fresh registry generation = %d, want 0", gen)
	}
	if err := r.HandleJoin(ctx, member("rli-a", "rli")); err != nil {
		t.Fatal(err)
	}
	if err := r.HandleJoin(ctx, member("rli-b", "rli")); err != nil {
		t.Fatal(err)
	}
	if gen := r.Generation(); gen != 2 {
		t.Fatalf("generation after two joins = %d, want 2", gen)
	}

	view, err := r.HandleView(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !view.Changed || len(view.Members) != 2 {
		t.Fatalf("view = changed %v members %d, want changed with 2", view.Changed, len(view.Members))
	}
	if view.Members[0].Name != "rli-a" || view.Members[1].Name != "rli-b" {
		t.Fatalf("members not name-sorted: %v", view.Members)
	}

	// An up-to-date puller gets a cheap "nothing new".
	view, err = r.HandleView(ctx, view.Generation)
	if err != nil {
		t.Fatal(err)
	}
	if view.Changed || view.Members != nil {
		t.Fatalf("up-to-date view = changed %v members %v, want unchanged empty", view.Changed, view.Members)
	}

	// An identical re-join refreshes the lease without a generation bump.
	if err := r.HandleJoin(ctx, member("rli-a", "rli")); err != nil {
		t.Fatal(err)
	}
	if gen := r.Generation(); gen != 2 {
		t.Fatalf("generation after idempotent re-join = %d, want 2", gen)
	}
	// A changed record does bump it.
	m := member("rli-a", "rli")
	m.Group = "g2"
	if err := r.HandleJoin(ctx, m); err != nil {
		t.Fatal(err)
	}
	if gen := r.Generation(); gen != 3 {
		t.Fatalf("generation after changed re-join = %d, want 3", gen)
	}
}

func TestRegistryJoinValidation(t *testing.T) {
	r := NewRegistry(RegistryConfig{})
	err := r.HandleJoin(context.Background(), wire.MemberInfo{Name: "", URL: "rls://x"})
	if !errors.Is(err, rdb.ErrInvalid) {
		t.Fatalf("nameless join error = %v, want ErrInvalid", err)
	}
	err = r.HandleJoin(context.Background(), wire.MemberInfo{Name: "x", URL: ""})
	if !errors.Is(err, rdb.ErrInvalid) {
		t.Fatalf("url-less join error = %v, want ErrInvalid", err)
	}
}

func TestRegistryLeaseExpiry(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	r := NewRegistry(RegistryConfig{TTL: 10 * time.Second, Clock: fc})
	ctx := context.Background()

	if err := r.HandleJoin(ctx, member("rli-a", "rli")); err != nil {
		t.Fatal(err)
	}
	if err := r.HandleJoin(ctx, member("rli-b", "rli")); err != nil {
		t.Fatal(err)
	}

	// Heartbeats keep rli-a alive while rli-b goes silent.
	for i := 0; i < 3; i++ {
		fc.Advance(6 * time.Second)
		if err := r.HandleHeartbeat(ctx, "rli-a"); err != nil {
			t.Fatal(err)
		}
	}
	genBefore := r.Generation()
	if dropped := r.ExpireNow(); dropped != 1 {
		t.Fatalf("ExpireNow dropped %d members, want 1 (silent rli-b)", dropped)
	}
	if r.Generation() != genBefore+1 {
		t.Fatalf("expiry did not bump generation: %d -> %d", genBefore, r.Generation())
	}
	if n := r.MemberCount(); n != 1 {
		t.Fatalf("member count after expiry = %d, want 1", n)
	}

	// The expired member's next heartbeat must be refused so it re-joins.
	err := r.HandleHeartbeat(ctx, "rli-b")
	if !errors.Is(err, ErrUnknownMember) || !errors.Is(err, rdb.ErrNotFound) {
		t.Fatalf("heartbeat after expiry = %v, want ErrUnknownMember wrapping ErrNotFound", err)
	}
	if st := r.Stats(); st.Expired != 1 {
		t.Fatalf("Stats.Expired = %d, want 1", st.Expired)
	}
}

func TestRegistryLeaveUnknownIsNoop(t *testing.T) {
	r := NewRegistry(RegistryConfig{})
	gen := r.Generation()
	if err := r.HandleLeave(context.Background(), "ghost"); err != nil {
		t.Fatalf("unknown leave = %v, want nil (races lease expiry)", err)
	}
	if r.Generation() != gen {
		t.Fatal("unknown leave bumped the generation")
	}
}

func TestRegistrySweepLoopExpires(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	r := NewRegistry(RegistryConfig{TTL: 4 * time.Second, SweepInterval: time.Second, Clock: fc})
	r.Start()
	defer r.Close()
	if err := r.HandleJoin(context.Background(), member("rli-a", "rli")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for r.MemberCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweep loop never expired the silent member")
		}
		fc.Advance(time.Second)
		time.Sleep(time.Millisecond)
	}
}
