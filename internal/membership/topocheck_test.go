package membership

import "testing"

func TestExampleTopologyFile(t *testing.T) {
	topo, err := ParseFile("../../deploy/example-topology.json")
	if err != nil {
		t.Fatal(err)
	}
	dep, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	dep.Close()
}
