package membership

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/wire"
)

// fakeStatusErr mimics client.StatusError via the statusCoded interface.
type fakeStatusErr struct{ code uint16 }

func (e *fakeStatusErr) Error() string      { return fmt.Sprintf("status %d", e.code) }
func (e *fakeStatusErr) StatusCode() uint16 { return e.code }

// fakeSeed is an in-memory MemberClient backed by a Registry, optionally
// failing at the transport level.
type fakeSeed struct {
	reg *Registry

	mu     sync.Mutex
	dead   bool // transport-level failure on every call
	closed bool
	calls  int
}

func (f *fakeSeed) check() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.dead || f.closed {
		return errors.New("connection reset")
	}
	return nil
}

// asStatus converts registry sentinel errors into wire-status shapes the way
// the real server + client pair would.
func asStatus(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, ErrUnknownMember) {
		return &fakeStatusErr{code: uint16(wire.StatusNotFound)}
	}
	return err
}

func (f *fakeSeed) MemberJoin(ctx context.Context, m wire.MemberInfo) error {
	if err := f.check(); err != nil {
		return err
	}
	return asStatus(f.reg.HandleJoin(ctx, m))
}

func (f *fakeSeed) MemberLeave(ctx context.Context, name string) error {
	if err := f.check(); err != nil {
		return err
	}
	return asStatus(f.reg.HandleLeave(ctx, name))
}

func (f *fakeSeed) MemberHeartbeat(ctx context.Context, name string) error {
	if err := f.check(); err != nil {
		return err
	}
	return asStatus(f.reg.HandleHeartbeat(ctx, name))
}

func (f *fakeSeed) MemberView(ctx context.Context, since uint64) (*wire.MemberViewResponse, error) {
	if err := f.check(); err != nil {
		return nil, err
	}
	v, err := f.reg.HandleView(ctx, since)
	return v, asStatus(err)
}

func (f *fakeSeed) Close() error {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	return nil
}

func (f *fakeSeed) setDead(dead bool) {
	f.mu.Lock()
	f.dead = dead
	f.closed = false
	f.mu.Unlock()
}

func newAgentFixture(t *testing.T, seeds map[string]*fakeSeed, self wire.MemberInfo, fc clock.Clock) *Agent {
	t.Helper()
	urls := make([]string, 0, len(seeds))
	for url := range seeds {
		urls = append(urls, url)
	}
	a, err := NewAgent(AgentConfig{
		Self:  self,
		Seeds: urls,
		Dial: func(ctx context.Context, url string) (MemberClient, error) {
			s := seeds[url]
			s.mu.Lock()
			dead := s.dead
			s.closed = false
			s.mu.Unlock()
			if dead {
				return nil, errors.New("dial refused")
			}
			return s, nil
		},
		Clock: fc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAgentJoinHeartbeatRejoin(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	reg := NewRegistry(RegistryConfig{TTL: 10 * time.Second, Clock: fc})
	seed := &fakeSeed{reg: reg}
	self := member("rli-a", "rli")
	a := newAgentFixture(t, map[string]*fakeSeed{"rls://seed": seed}, self, fc)

	if err := a.Start(context.Background()); err != nil {
		t.Fatalf("initial join: %v", err)
	}
	defer a.Close()
	if reg.MemberCount() != 1 {
		t.Fatal("join did not register the member")
	}

	// Heartbeats renew the lease.
	a.heartbeat()
	if st := a.Stats(); st.Heartbeats != 1 {
		t.Fatalf("Heartbeats = %d, want 1", st.Heartbeats)
	}

	// Simulate a lease expiry on the seed: the next heartbeat is refused
	// with not-found and the agent re-joins transparently.
	if err := reg.HandleLeave(context.Background(), "rli-a"); err != nil {
		t.Fatal(err)
	}
	a.heartbeat()
	st := a.Stats()
	if st.Rejoins != 1 {
		t.Fatalf("Rejoins = %d, want 1", st.Rejoins)
	}
	if reg.MemberCount() != 1 {
		t.Fatal("re-join did not restore the member")
	}
}

func TestAgentRotatesSeedsOnTransportFailure(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	reg := NewRegistry(RegistryConfig{Clock: fc})
	// Both seeds answer from one registry, as real seeds eventually would via
	// their own anti-entropy; here the point is only the rotation.
	s1 := &fakeSeed{reg: reg}
	s2 := &fakeSeed{reg: reg}
	s1.setDead(true)
	a := newAgentFixture(t, map[string]*fakeSeed{"rls://seed1": s1, "rls://seed2": s2}, member("rli-a", "rli"), fc)

	if err := a.Start(context.Background()); err != nil {
		t.Fatalf("join should have rotated to the live seed: %v", err)
	}
	defer a.Close()
	if reg.MemberCount() != 1 {
		t.Fatal("member not registered via the surviving seed")
	}
	if st := a.Stats(); st.SeedErrors == 0 {
		t.Fatal("dead seed left no SeedErrors trace")
	}
}

func TestAgentPullViewAppliesOnlyNewGenerations(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	reg := NewRegistry(RegistryConfig{Clock: fc})
	seed := &fakeSeed{reg: reg}
	var views []*wire.MemberViewResponse
	var mu sync.Mutex
	a := newAgentFixture(t, map[string]*fakeSeed{"rls://seed": seed}, member("rli-a", "rli"), fc)
	a.cfg.OnView = func(v *wire.MemberViewResponse) {
		mu.Lock()
		views = append(views, v)
		mu.Unlock()
	}

	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	a.PullNow() // gen 1: self joined
	a.PullNow() // unchanged → no callback
	if err := reg.HandleJoin(context.Background(), member("rli-b", "rli")); err != nil {
		t.Fatal(err)
	}
	a.PullNow() // gen 2

	mu.Lock()
	defer mu.Unlock()
	if len(views) != 2 {
		t.Fatalf("OnView fired %d times, want 2 (gen 1 and gen 2 only)", len(views))
	}
	if views[1].Generation != 2 || len(views[1].Members) != 2 {
		t.Fatalf("last view = gen %d with %d members, want gen 2 with 2", views[1].Generation, len(views[1].Members))
	}
	if a.Generation() != 2 {
		t.Fatalf("agent generation = %d, want 2", a.Generation())
	}
}

func TestAgentCloseLeaves(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	reg := NewRegistry(RegistryConfig{Clock: fc})
	seed := &fakeSeed{reg: reg}
	a := newAgentFixture(t, map[string]*fakeSeed{"rls://seed": seed}, member("rli-a", "rli"), fc)
	if err := a.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	a.Close()
	if reg.MemberCount() != 0 {
		t.Fatal("Close did not deregister the member")
	}
	a.Close() // second close is a no-op, must not panic or double-leave
	if st := reg.Stats(); st.Leaves != 1 {
		t.Fatalf("Leaves = %d, want exactly 1", st.Leaves)
	}
}
