package membership

import (
	"context"
	"strings"
	"testing"
)

const validTopology = `{
  "servers": [
    {"name": "lrc0", "roles": ["lrc"], "fast_disk": true},
    {"name": "lrc1", "roles": ["lrc"], "fast_disk": true, "immediate_mode": true, "immediate_interval_seconds": 5},
    {"name": "rli0", "roles": ["rli"], "fast_disk": true, "rli_timeout_seconds": 600},
    {"name": "both", "roles": ["lrc", "rli"], "fast_disk": true}
  ],
  "updates": [
    {"lrc": "lrc0", "rli": "rli0"},
    {"lrc": "lrc1", "rli": "rli0", "bloom": true},
    {"lrc": "both", "rli": "both", "patterns": ["^lfn://ligo/"]}
  ]
}`

func TestParseValidTopology(t *testing.T) {
	topo, err := Parse(strings.NewReader(validTopology))
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Servers) != 4 || len(topo.Updates) != 3 {
		t.Fatalf("parsed %d servers, %d updates", len(topo.Servers), len(topo.Updates))
	}
}

func TestParseRejectsUnknownFields(t *testing.T) {
	_, err := Parse(strings.NewReader(`{"servers": [{"name":"x","roles":["lrc"],"bogus":1}]}`))
	if err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"no servers", `{}`},
		{"unnamed server", `{"servers":[{"roles":["lrc"]}]}`},
		{"duplicate names", `{"servers":[{"name":"a","roles":["lrc"]},{"name":"a","roles":["rli"]}]}`},
		{"no roles", `{"servers":[{"name":"a"}]}`},
		{"bad role", `{"servers":[{"name":"a","roles":["database"]}]}`},
		{"bad net", `{"servers":[{"name":"a","roles":["lrc"],"net":"dialup"}]}`},
		{"bad backend", `{"servers":[{"name":"a","roles":["lrc"],"backend":"oracle"}]}`},
		{"unknown lrc in update", `{"servers":[{"name":"a","roles":["rli"]}],"updates":[{"lrc":"zz","rli":"a"}]}`},
		{"unknown rli in update", `{"servers":[{"name":"a","roles":["lrc"]}],"updates":[{"lrc":"a","rli":"zz"}]}`},
		{"lrc role mismatch", `{"servers":[{"name":"a","roles":["rli"]},{"name":"b","roles":["rli"]}],"updates":[{"lrc":"a","rli":"b"}]}`},
		{"rli role mismatch", `{"servers":[{"name":"a","roles":["lrc"]},{"name":"b","roles":["lrc"]}],"updates":[{"lrc":"a","rli":"b"}]}`},
		{"bad pattern", `{"servers":[{"name":"a","roles":["lrc"]},{"name":"b","roles":["rli"]}],"updates":[{"lrc":"a","rli":"b","patterns":["["]}]}`},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.json)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestBuildRunsTopology(t *testing.T) {
	ctx := context.Background()
	topo, err := Parse(strings.NewReader(validTopology))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()

	// Register at lrc0, push, query at rli0 — the wiring works end to end.
	c, err := dep.Dial("lrc0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateMapping(ctx, "lfn://topo/x", "pfn://x"); err != nil {
		t.Fatal(err)
	}
	node, _ := dep.Node("lrc0")
	for _, res := range node.LRC.ForceUpdate(ctx) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	rc, err := dep.Dial("rli0")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	lrcs, err := rc.RLIQuery(ctx, "lfn://topo/x")
	if err != nil || len(lrcs) != 1 {
		t.Fatalf("query = %v, %v", lrcs, err)
	}
	// Bloom link from lrc1 works too.
	c1, _ := dep.Dial("lrc1")
	defer c1.Close()
	if err := c1.CreateMapping(ctx, "lfn://topo/y", "pfn://y"); err != nil {
		t.Fatal(err)
	}
	n1, _ := dep.Node("lrc1")
	for _, res := range n1.LRC.ForceUpdate(ctx) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Kind != "bloom" {
			t.Fatalf("lrc1 update kind = %s, want bloom", res.Kind)
		}
	}
}

func TestBuildTCPListener(t *testing.T) {
	ctx := context.Background()
	topo, err := Parse(strings.NewReader(`{
	  "servers": [{"name": "l", "roles": ["lrc"], "fast_disk": true, "listen": true}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	node, _ := dep.Node("l")
	if node.Addr() == "" {
		t.Fatal("listener not started")
	}
	c, err := dep.DialTCP("l")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestParseFileMissing(t *testing.T) {
	if _, err := ParseFile("/nonexistent/topology.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestPostgresBackendSelected(t *testing.T) {
	topo, err := Parse(strings.NewReader(`{
	  "servers": [{"name": "pg", "roles": ["lrc"], "backend": "postgres", "fast_disk": true}]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	dep, err := topo.Build()
	if err != nil {
		t.Fatal(err)
	}
	defer dep.Close()
	node, _ := dep.Node("pg")
	if node.LRCEngine.Personality().String() != "postgres" {
		t.Fatalf("personality = %s", node.LRCEngine.Personality())
	}
}
