package membership

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/rdb"
	"repro/internal/wire"
)

// ErrUnknownMember reports a heartbeat for a member the registry does not
// hold — typically one already expired. It wraps rdb.ErrNotFound so the
// server maps it onto the wire not-found status, which the agent treats as
// "re-join".
var ErrUnknownMember = fmt.Errorf("%w: unknown member", rdb.ErrNotFound)

// Registry defaults.
const (
	// DefaultTTL is how long a member's lease lives without a heartbeat.
	DefaultTTL = 10 * time.Second
	// DefaultSweepInterval is how often the expiry sweep runs.
	DefaultSweepInterval = 2 * time.Second
)

// RegistryConfig configures a seed-node Registry.
type RegistryConfig struct {
	// TTL is the member lease; a member that neither heartbeats nor
	// re-joins within it is expired. DefaultTTL if zero.
	TTL time.Duration
	// SweepInterval is the expiry-sweep period. DefaultSweepInterval if
	// zero.
	SweepInterval time.Duration
	// Clock drives leases and sweeps; defaults to the real clock.
	Clock clock.Clock
	// Logger receives membership-change diagnostics. Nil discards.
	Logger *slog.Logger
}

// Registry is the seed-node runtime membership service: nodes join and
// heartbeat, silent members expire, and every change bumps a generation
// number so pullers can cheaply detect "nothing new". It implements
// server.Membership.
type Registry struct {
	cfg RegistryConfig
	clk clock.Clock
	log *slog.Logger

	mu      sync.Mutex
	gen     uint64
	members map[string]*memberEntry

	stop chan struct{}
	wg   sync.WaitGroup

	stats RegistryStats
}

// memberEntry is one registered member with its lease.
type memberEntry struct {
	info     wire.MemberInfo
	lastSeen time.Time
}

// RegistryStats counts registry activity.
type RegistryStats struct {
	Joins      int64
	Leaves     int64
	Heartbeats int64
	Expired    int64
	ViewPulls  int64
}

// NewRegistry creates a registry. Call Start to run the expiry sweep.
func NewRegistry(cfg RegistryConfig) *Registry {
	if cfg.TTL <= 0 {
		cfg.TTL = DefaultTTL
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = DefaultSweepInterval
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Registry{
		cfg:     cfg,
		clk:     cfg.Clock,
		log:     cfg.Logger,
		members: make(map[string]*memberEntry),
		stop:    make(chan struct{}),
	}
}

// Start launches the expiry sweep.
func (r *Registry) Start() {
	r.wg.Add(1)
	go r.sweepLoop()
}

// Close stops the expiry sweep. Safe to call more than once.
func (r *Registry) Close() {
	select {
	case <-r.stop:
	default:
		close(r.stop)
	}
	r.wg.Wait()
}

// sweepLoop periodically expires members whose lease ran out.
func (r *Registry) sweepLoop() {
	defer r.wg.Done()
	t := r.clk.NewTicker(r.cfg.SweepInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C():
			r.ExpireNow()
		}
	}
}

// sameMember reports whether two member records are identical, so an
// idempotent re-join refreshes the lease without bumping the generation.
func sameMember(a, b wire.MemberInfo) bool {
	if a.Name != b.Name || a.URL != b.URL || a.Group != b.Group || len(a.Roles) != len(b.Roles) {
		return false
	}
	for i := range a.Roles {
		if a.Roles[i] != b.Roles[i] {
			return false
		}
	}
	return true
}

// HandleJoin registers or refreshes a member (server.Membership).
func (r *Registry) HandleJoin(ctx context.Context, m wire.MemberInfo) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if m.Name == "" || m.URL == "" {
		return fmt.Errorf("%w: member join needs a name and url", rdb.ErrInvalid)
	}
	now := r.clk.Now()
	r.mu.Lock()
	r.stats.Joins++
	cur, ok := r.members[m.Name]
	if ok && sameMember(cur.info, m) {
		cur.lastSeen = now // lease refresh, view unchanged
		r.mu.Unlock()
		return nil
	}
	r.members[m.Name] = &memberEntry{info: m, lastSeen: now}
	r.gen++
	gen := r.gen
	r.mu.Unlock()
	r.log.Info("membership: member joined", "name", m.Name, "url", m.URL,
		"roles", m.Roles, "group", m.Group, "generation", gen)
	return nil
}

// HandleLeave removes a member (server.Membership). Unknown names are a
// no-op: a graceful leave may race lease expiry.
func (r *Registry) HandleLeave(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	r.mu.Lock()
	r.stats.Leaves++
	_, ok := r.members[name]
	var gen uint64
	if ok {
		delete(r.members, name)
		r.gen++
		gen = r.gen
	}
	r.mu.Unlock()
	if ok {
		r.log.Info("membership: member left", "name", name, "generation", gen)
	}
	return nil
}

// HandleHeartbeat renews a member's lease (server.Membership). An unknown
// member is an error so the node learns it was expired and re-joins.
func (r *Registry) HandleHeartbeat(ctx context.Context, name string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	now := r.clk.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.Heartbeats++
	en, ok := r.members[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownMember, name)
	}
	en.lastSeen = now
	return nil
}

// HandleView returns the current view (server.Membership). Members are
// sorted by name so identical views serialize identically.
func (r *Registry) HandleView(ctx context.Context, since uint64) (*wire.MemberViewResponse, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stats.ViewPulls++
	resp := &wire.MemberViewResponse{Generation: r.gen}
	if r.gen <= since {
		return resp, nil
	}
	resp.Changed = true
	resp.Members = make([]wire.MemberInfo, 0, len(r.members))
	for _, en := range r.members {
		resp.Members = append(resp.Members, en.info)
	}
	sort.Slice(resp.Members, func(i, j int) bool { return resp.Members[i].Name < resp.Members[j].Name })
	return resp, nil
}

// ExpireNow runs one expiry sweep, returning how many members were dropped.
func (r *Registry) ExpireNow() int {
	cutoff := r.clk.Now().Add(-r.cfg.TTL)
	r.mu.Lock()
	var dropped []string
	for name, en := range r.members {
		if en.lastSeen.Before(cutoff) {
			delete(r.members, name)
			dropped = append(dropped, name)
		}
	}
	if len(dropped) > 0 {
		r.gen++
		r.stats.Expired += int64(len(dropped))
	}
	gen := r.gen
	r.mu.Unlock()
	if len(dropped) > 0 {
		r.log.Warn("membership: expired silent members", "names", dropped, "generation", gen)
	}
	return len(dropped)
}

// Generation returns the current view generation.
func (r *Registry) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// MemberCount reports how many members are registered.
func (r *Registry) MemberCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.members)
}

// Stats returns a snapshot of registry counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}
