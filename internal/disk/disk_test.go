package disk

import (
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

func TestZeroCostDeviceIsFree(t *testing.T) {
	d := New(Fast())
	start := time.Now()
	for i := 0; i < 1000; i++ {
		d.Write(4096)
		d.Sync()
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("zero-cost device took %v for 1000 ops", elapsed)
	}
	st := d.Stats()
	if st.Syncs != 1000 || st.Writes != 1000 {
		t.Fatalf("stats = %+v, want 1000 syncs and writes", st)
	}
	if st.BytesWritten != 1000*4096 {
		t.Fatalf("BytesWritten = %d, want %d", st.BytesWritten, 1000*4096)
	}
}

func TestSyncChargesLatencyOnFakeClock(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	d := New(Params{SyncLatency: 8 * time.Millisecond, Clock: fc})
	done := make(chan struct{})
	go func() {
		d.Sync()
		close(done)
	}()
	for i := 0; i < 1000 && fc.Pending() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	select {
	case <-done:
		t.Fatal("Sync returned before latency elapsed")
	default:
	}
	fc.Advance(8 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Sync did not return after advancing the clock")
	}
}

func TestWriteCostScalesWithSize(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	d := New(Params{WriteCostPerKB: time.Millisecond, Clock: fc})
	done := make(chan struct{})
	go func() {
		d.Write(4 * 1024) // should cost 4ms
		close(done)
	}()
	for i := 0; i < 1000 && fc.Pending() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	fc.Advance(3 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("4KiB write completed after only 3ms at 1ms/KiB")
	default:
	}
	fc.Advance(time.Millisecond)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("write did not complete after full cost elapsed")
	}
}

func TestSmallWriteBelowGranularityIsFree(t *testing.T) {
	d := New(Params{WriteCostPerKB: time.Millisecond})
	start := time.Now()
	d.Write(1) // 1/1024 ms truncates to 0
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("1-byte write took %v", elapsed)
	}
}

func TestWriteZeroOrNegativeIgnored(t *testing.T) {
	d := New(DefaultParams())
	d.Write(0)
	d.Write(-5)
	if st := d.Stats(); st.Writes != 0 || st.BytesWritten != 0 {
		t.Fatalf("stats after no-op writes = %+v, want zeros", st)
	}
}

func TestConcurrentSyncsSerialize(t *testing.T) {
	// With a real clock and a measurable latency, N concurrent syncs must
	// take at least N * latency: the device has a single command queue.
	const lat = 5 * time.Millisecond
	const n = 4
	d := New(Params{SyncLatency: lat})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Sync()
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < n*lat {
		t.Fatalf("%d concurrent syncs finished in %v, want >= %v", n, elapsed, n*lat)
	}
}

func TestDefaultParams(t *testing.T) {
	p := DefaultParams()
	if p.SyncLatency != DefaultSyncLatency {
		t.Fatalf("SyncLatency = %v, want %v", p.SyncLatency, DefaultSyncLatency)
	}
	if p.WriteCostPerKB != DefaultWriteCostPerKB {
		t.Fatalf("WriteCostPerKB = %v, want %v", p.WriteCostPerKB, DefaultWriteCostPerKB)
	}
}
