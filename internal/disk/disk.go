// Package disk models the latency characteristics of the storage device that
// backed the databases in the HPDC 2004 RLS evaluation.
//
// The paper's headline LRC result (Figure 4) hinges on whether the database
// flushes each transaction to the physical disk: roughly 84 adds/s with the
// flush enabled versus over 700 adds/s with it disabled, on 2004-era SCSI
// disks whose synchronous write latency was on the order of 8-12 ms. A modern
// NVMe device syncs in tens of microseconds, which would erase the effect the
// paper measures. Device therefore charges a configurable latency for each
// sync and a per-byte cost for writes, preserving the *shape* of the
// evaluation on present-day hardware. Setting both costs to zero turns the
// device into a no-op, which benchmarks use to isolate software overhead.
package disk

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
)

// Default cost parameters, chosen to land single-threaded flush-enabled
// commit rates near the ~84-125/s regime of the paper's server.
const (
	// DefaultSyncLatency approximates one rotational-disk synchronous write.
	DefaultSyncLatency = 8 * time.Millisecond
	// DefaultWriteCostPerKB approximates sequential log-write bandwidth
	// (~40 MB/s, typical of the paper's era).
	DefaultWriteCostPerKB = 25 * time.Microsecond
	// DefaultDeadTupleCost approximates the visibility check plus the
	// amortized heap-page fetch PostgreSQL 7.2 paid for every dead row
	// version an index scan visited — the cost that makes the paper's
	// Figure 8 add rate decay until VACUUM reclaims the tombstones.
	DefaultDeadTupleCost = 5 * time.Microsecond
)

// Params configures a simulated device.
type Params struct {
	// SyncLatency is charged once per Sync call.
	SyncLatency time.Duration
	// WriteCostPerKB is charged per KiB on Write.
	WriteCostPerKB time.Duration
	// DeadTupleCost is charged per dead row version visited by an index
	// scan (PostgreSQL-personality engines only ever have dead versions).
	DeadTupleCost time.Duration
	// Clock supplies Sleep; defaults to the real clock.
	Clock clock.Clock
}

// DefaultParams returns the 2004-era device model used by the benchmarks.
func DefaultParams() Params {
	return Params{
		SyncLatency:    DefaultSyncLatency,
		WriteCostPerKB: DefaultWriteCostPerKB,
		DeadTupleCost:  DefaultDeadTupleCost,
	}
}

// Fast returns a zero-cost device model, useful for tests that do not care
// about device timing.
func Fast() Params { return Params{} }

// Device is a simulated disk. It is safe for concurrent use. Sync calls
// serialize, modelling a single device command queue: concurrent committers
// each pay at least one full sync latency, which is what prevents the
// flush-enabled add rate in Figure 4 from scaling with thread count.
type Device struct {
	params Params
	clk    clock.Clock

	mu sync.Mutex // serializes Sync

	bytesWritten atomic.Int64
	syncs        atomic.Int64
	writes       atomic.Int64
	deadVisits   atomic.Int64
	pendingDead  atomic.Int64 // unpaid dead-tuple cost in nanoseconds
	pendingWrite atomic.Int64 // unpaid write cost in nanoseconds
}

// New creates a Device with the given parameters.
func New(p Params) *Device {
	clk := p.Clock
	if clk == nil {
		clk = clock.Real{}
	}
	return &Device{params: p, clk: clk}
}

// Write charges the cost of writing n bytes to the device and records it in
// the device counters. It does not serialize with other writers: buffered
// log appends overlap in real devices.
func (d *Device) Write(n int) {
	if n <= 0 {
		return
	}
	d.bytesWritten.Add(int64(n))
	d.writes.Add(1)
	if d.params.WriteCostPerKB > 0 {
		d.charge(&d.pendingWrite, int64(d.params.WriteCostPerKB)*int64(n)/1024)
	}
}

// charge accumulates a cost in nanoseconds against the pending counter and
// sleeps once a full granule has accrued. Individual costs are far below
// timer resolution (tens of microseconds); paying them in granules keeps the
// aggregate accurate without rounding every call up to a timer tick.
func (d *Device) charge(pending *atomic.Int64, nanos int64) {
	if nanos <= 0 {
		return
	}
	p := pending.Add(nanos)
	if p < chargeGranule {
		return
	}
	pay := (p / chargeGranule) * chargeGranule
	if pending.CompareAndSwap(p, p-pay) {
		d.clk.Sleep(time.Duration(pay))
	}
	// A lost CAS means another goroutine raced the counter; it will pay the
	// accumulated cost on its own call.
}

// Sync charges one synchronous flush. Calls serialize.
func (d *Device) Sync() {
	d.syncs.Add(1)
	if d.params.SyncLatency <= 0 {
		return
	}
	d.mu.Lock()
	//lint:ignore lockcheck sleeping under d.mu models the device's single command queue, serializing syncs is the point
	d.clk.Sleep(d.params.SyncLatency)
	d.mu.Unlock()
}

// chargeGranule batches sub-timer-resolution costs into sleeps long enough
// for the OS timer to honour.
const chargeGranule = int64(time.Millisecond)

// VisitDeadTuples charges the cost of visiting n dead row versions during
// an index scan. Costs accumulate and are paid in millisecond granules, so
// the aggregate charge is accurate even though individual visits are far
// below timer resolution. Calls do not serialize: reads overlap in real
// devices.
func (d *Device) VisitDeadTuples(n int) {
	if n <= 0 {
		return
	}
	d.deadVisits.Add(int64(n))
	if d.params.DeadTupleCost > 0 {
		d.charge(&d.pendingDead, int64(n)*int64(d.params.DeadTupleCost))
	}
}

// Stats reports cumulative device activity.
type Stats struct {
	BytesWritten int64
	Writes       int64
	Syncs        int64
	DeadVisits   int64
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	return Stats{
		BytesWritten: d.bytesWritten.Load(),
		Writes:       d.writes.Load(),
		Syncs:        d.syncs.Load(),
		DeadVisits:   d.deadVisits.Load(),
	}
}
