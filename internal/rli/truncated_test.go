package rli

import "testing"

// TestTruncatedFullUpdateCounted is the regression test for the ignored
// SSFullStart total: a stream that loses batches but still delivers
// SSFullEnd used to close the session as if complete. The RLI must compare
// the streamed count against the advertised total and account the mismatch.
func TestTruncatedFullUpdateCounted(t *testing.T) {
	s := newTestRLI(t, nil)

	// Advertise 5 names, deliver 2, then End: truncated.
	if err := s.HandleFullStart(ctx, "rls://lrc1", 5); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleFullBatch(ctx, "rls://lrc1", []string{"lfn://a", "lfn://b"}); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleFullEnd(ctx, "rls://lrc1"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.TruncatedFulls != 1 {
		t.Fatalf("TruncatedFulls = %d after a short stream, want 1", st.TruncatedFulls)
	}
	// The names that did arrive stay valid soft state.
	if _, err := s.QueryLRCs(ctx, "lfn://a"); err != nil {
		t.Fatalf("partial data lost after truncated full: %v", err)
	}

	// A complete stream does not count.
	if err := s.HandleFullStart(ctx, "rls://lrc1", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleFullBatch(ctx, "rls://lrc1", []string{"lfn://c"}); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleFullEnd(ctx, "rls://lrc1"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.TruncatedFulls != 1 {
		t.Fatalf("TruncatedFulls = %d after a complete stream, want 1", st.TruncatedFulls)
	}

	// Total 0 means "unknown" (partitioned senders): no truncation check.
	if err := s.HandleFullStart(ctx, "rls://lrc1", 0); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleFullEnd(ctx, "rls://lrc1"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.TruncatedFulls != 1 {
		t.Fatalf("TruncatedFulls = %d with unknown total, want 1", st.TruncatedFulls)
	}
}
