package rli

import (
	"context"
	"errors"
	"time"

	"repro/internal/bloom"
	"repro/internal/rdb"
	"repro/internal/wire"
)

// Warm-standby bootstrap: a fresh RLI replica joining a group would
// otherwise serve false not-founds for up to one full soft-state period
// until every LRC's next scheduled update reaches it. Instead it imports a
// peer's in-memory Bloom store — each filter stamped with its age, so the
// importer reconstructs receive times against its own clock — and is able
// to answer queries immediately; the next incremental/Bloom stream from the
// LRCs then takes over refreshing the state.

// ExportSnapshot serializes the in-memory Bloom store for a peer replica.
// Ages rather than absolute times cross the wire: the peers' clocks need
// not agree, only their rates do.
func (s *Service) ExportSnapshot(ctx context.Context) ([]wire.RLIFilterState, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	now := s.clk.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]wire.RLIFilterState, 0, len(s.filters))
	for url, fe := range s.filters {
		data, err := fe.bitmap.MarshalBinary()
		if err != nil {
			return nil, err
		}
		out = append(out, wire.RLIFilterState{
			LRC:      url,
			Bitmap:   data,
			AgeNanos: now.Sub(fe.received).Nanoseconds(),
		})
	}
	s.stats.SnapshotExports++
	return out, nil
}

// ImportSnapshot installs a peer's Bloom store. An entry is skipped when the
// local copy is already fresher (the LRC's own stream beat the snapshot) and
// when its age exceeds the soft-state timeout — expired state must not be
// resurrected. Returns how many filters were installed.
func (s *Service) ImportSnapshot(ctx context.Context, entries []wire.RLIFilterState) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	now := s.clk.Now()
	installed := 0
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, en := range entries {
		age := time.Duration(en.AgeNanos)
		if age < 0 {
			age = 0
		}
		if age >= s.cfg.Timeout {
			continue
		}
		received := now.Add(-age)
		if cur, ok := s.filters[en.LRC]; ok && !cur.received.Before(received) {
			continue
		}
		var bm bloom.Bitmap
		if err := bm.UnmarshalBinary(en.Bitmap); err != nil {
			return installed, errors.Join(rdb.ErrInvalid, err)
		}
		s.filters[en.LRC] = &filterEntry{bitmap: &bm, received: received}
		if ts, ok := s.lastRefresh[en.LRC]; !ok || ts.Before(received) {
			s.lastRefresh[en.LRC] = received
		}
		installed++
	}
	s.stats.SnapshotImports++
	s.cfg.Logger.Info("rli: imported peer snapshot",
		"filters", installed, "offered", len(entries))
	return installed, nil
}
