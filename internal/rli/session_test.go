package rli

import (
	"testing"
	"time"

	"repro/internal/clock"
)

// TestFullSessionLifecycle exercises the session table through a clean
// update: Start opens, batches touch, End closes.
func TestFullSessionLifecycle(t *testing.T) {
	s := newTestRLI(t, nil)
	if got := s.SessionCount(); got != 0 {
		t.Fatalf("SessionCount before start = %d", got)
	}
	if err := s.HandleFullStart(ctx, "rls://lrc1", 2); err != nil {
		t.Fatal(err)
	}
	if got := s.SessionCount(); got != 1 {
		t.Fatalf("SessionCount after start = %d", got)
	}
	if err := s.HandleFullBatch(ctx, "rls://lrc1", []string{"lfn://a", "lfn://b"}); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleFullEnd(ctx, "rls://lrc1"); err != nil {
		t.Fatal(err)
	}
	if got := s.SessionCount(); got != 0 {
		t.Fatalf("SessionCount after end = %d", got)
	}
}

// TestFullSessionAbort is the regression test for the half-open-session
// leak: a client whose full update fails mid-stream sends an explicit
// abort, and the session must be discarded while the already-ingested
// names remain valid soft state.
func TestFullSessionAbort(t *testing.T) {
	s := newTestRLI(t, nil)
	if err := s.HandleFullStart(ctx, "rls://lrc1", 10); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleFullBatch(ctx, "rls://lrc1", []string{"lfn://a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleFullAbort(ctx, "rls://lrc1"); err != nil {
		t.Fatal(err)
	}
	if got := s.SessionCount(); got != 0 {
		t.Fatalf("SessionCount after abort = %d", got)
	}
	if st := s.Stats(); st.SessionsAborted != 1 {
		t.Fatalf("SessionsAborted = %d, want 1", st.SessionsAborted)
	}
	// The partial data stays queryable — it ages out via expiry, not abort.
	if _, err := s.QueryLRCs(ctx, "lfn://a"); err != nil {
		t.Fatalf("partial data lost on abort: %v", err)
	}
	// A second abort is an idempotent no-op (abort may race expiry).
	if err := s.HandleFullAbort(ctx, "rls://lrc1"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.SessionsAborted != 1 {
		t.Fatalf("idempotent abort double-counted: %+v", st)
	}
}

// TestFullSessionExpiry covers the server-side reap: an LRC that dies
// mid-update never sends End or Abort, and the expire thread must collect
// the silent session instead of leaving it half-open forever.
func TestFullSessionExpiry(t *testing.T) {
	fc := clock.NewFake(time.Unix(1000, 0))
	s := newTestRLI(t, func(c *Config) {
		c.Clock = fc
		c.Timeout = time.Minute
	})
	if err := s.HandleFullStart(ctx, "rls://lrc-dead", 100); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleFullBatch(ctx, "rls://lrc-dead", []string{"lfn://x"}); err != nil {
		t.Fatal(err)
	}

	// Still within the timeout: the session survives the sweep.
	fc.Advance(30 * time.Second)
	if _, err := s.ExpireNow(ctx); err != nil {
		t.Fatal(err)
	}
	if got := s.SessionCount(); got != 1 {
		t.Fatalf("live session reaped early: SessionCount = %d", got)
	}

	// Past the timeout with no further activity: reaped and counted.
	fc.Advance(time.Minute)
	if _, err := s.ExpireNow(ctx); err != nil {
		t.Fatal(err)
	}
	if got := s.SessionCount(); got != 0 {
		t.Fatalf("silent session not reaped: SessionCount = %d", got)
	}
	if st := s.Stats(); st.SessionsExpired != 1 {
		t.Fatalf("SessionsExpired = %d, want 1", st.SessionsExpired)
	}
}

// TestFullStartReplacesStaleSession: a new Start from the same LRC replaces
// a session whose stream died, rather than erroring or leaking.
func TestFullStartReplacesStaleSession(t *testing.T) {
	s := newTestRLI(t, nil)
	if err := s.HandleFullStart(ctx, "rls://lrc1", 5); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleFullStart(ctx, "rls://lrc1", 5); err != nil {
		t.Fatal(err)
	}
	if got := s.SessionCount(); got != 1 {
		t.Fatalf("SessionCount after replacing start = %d, want 1", got)
	}
	if err := s.HandleFullEnd(ctx, "rls://lrc1"); err != nil {
		t.Fatal(err)
	}
	if got := s.SessionCount(); got != 0 {
		t.Fatalf("SessionCount after end = %d", got)
	}
}

// TestQueryStaleness: answers drawing on soft state past the timeout are
// served but flagged, and the stale-answer counter moves.
func TestQueryStaleness(t *testing.T) {
	fc := clock.NewFake(time.Unix(1000, 0))
	s := newTestRLI(t, func(c *Config) {
		c.Clock = fc
		c.Timeout = time.Minute
	})
	if err := s.HandleFullStart(ctx, "rls://lrc1", 1); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleFullBatch(ctx, "rls://lrc1", []string{"lfn://a"}); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleFullEnd(ctx, "rls://lrc1"); err != nil {
		t.Fatal(err)
	}

	// Fresh: not stale.
	urls, stale, err := s.QueryLRCsDetailed(ctx, "lfn://a")
	if err != nil || len(urls) != 1 {
		t.Fatalf("QueryLRCsDetailed = %v, %v", urls, err)
	}
	if stale {
		t.Fatal("fresh answer flagged stale")
	}

	// Timeout elapses with no refresh; before the expire sweep runs the
	// entry is still served, but must carry the stale flag.
	fc.Advance(2 * time.Minute)
	urls, stale, err = s.QueryLRCsDetailed(ctx, "lfn://a")
	if err != nil || len(urls) != 1 {
		t.Fatalf("QueryLRCsDetailed after timeout = %v, %v", urls, err)
	}
	if !stale {
		t.Fatal("expired-but-unswept answer not flagged stale")
	}
	if st := s.Stats(); st.StaleAnswers != 1 {
		t.Fatalf("StaleAnswers = %d, want 1", st.StaleAnswers)
	}

	// A refresh (incremental) clears the staleness.
	if err := s.HandleIncremental(ctx, "rls://lrc1", []string{"lfn://a"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, stale, err = s.QueryLRCsDetailed(ctx, "lfn://a"); err != nil || stale {
		t.Fatalf("refreshed answer: stale=%v err=%v", stale, err)
	}
}

// TestQueryStalenessBloomFresh: a fresh Bloom filter vouches for its LRC
// even if the database-backed refresh timestamp is old.
func TestQueryStalenessBloomFresh(t *testing.T) {
	fc := clock.NewFake(time.Unix(1000, 0))
	s := newTestRLI(t, func(c *Config) {
		c.Clock = fc
		c.Timeout = time.Minute
	})
	if err := s.HandleIncremental(ctx, "rls://lrc1", []string{"lfn://a"}, nil); err != nil {
		t.Fatal(err)
	}
	fc.Advance(2 * time.Minute)
	// The LRC switched to compressed updates: a fresh filter arrives.
	if err := s.HandleBloom(ctx, "rls://lrc1", bloomPayload(t, "lfn://a")); err != nil {
		t.Fatal(err)
	}
	_, stale, err := s.QueryLRCsDetailed(ctx, "lfn://a")
	if err != nil {
		t.Fatal(err)
	}
	if stale {
		t.Fatal("answer vouched for by a fresh Bloom filter flagged stale")
	}
}
