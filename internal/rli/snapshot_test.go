package rli

import (
	"testing"
	"time"

	"repro/internal/clock"
)

func TestSnapshotRoundTrip(t *testing.T) {
	fc := clock.NewFake(time.Unix(1000, 0))
	source := newTestRLI(t, func(c *Config) { c.Clock = fc; c.Timeout = time.Minute })
	standby := newTestRLI(t, func(c *Config) { c.Clock = fc; c.Timeout = time.Minute })

	if err := source.HandleBloom(ctx, "rls://lrc1", bloomPayload(t, "lfn://a", "lfn://b")); err != nil {
		t.Fatal(err)
	}
	if err := source.HandleBloom(ctx, "rls://lrc2", bloomPayload(t, "lfn://c")); err != nil {
		t.Fatal(err)
	}

	entries, err := source.ExportSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("exported %d filters, want 2", len(entries))
	}

	// A cold standby misses everything...
	if lrcs, _ := standby.QueryLRCs(ctx, "lfn://a"); len(lrcs) != 0 {
		t.Fatalf("cold standby answered %v before import", lrcs)
	}
	// ...until the peer snapshot installs.
	n, err := standby.ImportSnapshot(ctx, entries)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("imported %d filters, want 2", n)
	}
	lrcs, stale, err := standby.QueryLRCsDetailed(ctx, "lfn://a")
	if err != nil {
		t.Fatal(err)
	}
	if len(lrcs) != 1 || lrcs[0] != "rls://lrc1" {
		t.Fatalf("standby answered %v after import, want [rls://lrc1]", lrcs)
	}
	if stale {
		t.Fatal("freshly imported filter reported stale")
	}
	if lrcs, _ := standby.QueryLRCs(ctx, "lfn://c"); len(lrcs) != 1 || lrcs[0] != "rls://lrc2" {
		t.Fatalf("standby answered %v for lrc2's name", lrcs)
	}
	st := standby.Stats()
	if st.SnapshotImports != 1 {
		t.Fatalf("SnapshotImports = %d, want 1", st.SnapshotImports)
	}
	if src := source.Stats(); src.SnapshotExports != 1 {
		t.Fatalf("SnapshotExports = %d, want 1", src.SnapshotExports)
	}
}

func TestSnapshotImportSkipsExpiredAndStale(t *testing.T) {
	fc := clock.NewFake(time.Unix(1000, 0))
	standby := newTestRLI(t, func(c *Config) { c.Clock = fc; c.Timeout = time.Minute })

	// The standby already holds a fresh filter for lrc1.
	if err := standby.HandleBloom(ctx, "rls://lrc1", bloomPayload(t, "lfn://fresh")); err != nil {
		t.Fatal(err)
	}

	source := newTestRLI(t, func(c *Config) { c.Clock = fc; c.Timeout = time.Minute })
	if err := source.HandleBloom(ctx, "rls://lrc1", bloomPayload(t, "lfn://old")); err != nil {
		t.Fatal(err)
	}
	if err := source.HandleBloom(ctx, "rls://lrc2", bloomPayload(t, "lfn://dead")); err != nil {
		t.Fatal(err)
	}

	entries, err := source.ExportSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Age the snapshot in transit: lrc2's filter beyond the soft-state
	// timeout (must not be resurrected), lrc1's behind the standby's own
	// fresher copy (must not be overwritten).
	for i := range entries {
		switch entries[i].LRC {
		case "rls://lrc2":
			entries[i].AgeNanos = (2 * time.Minute).Nanoseconds()
		case "rls://lrc1":
			entries[i].AgeNanos = (30 * time.Second).Nanoseconds()
		}
	}

	n, err := standby.ImportSnapshot(ctx, entries)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("imported %d filters, want 0 (one expired, one stale)", n)
	}
	if lrcs, _ := standby.QueryLRCs(ctx, "lfn://dead"); len(lrcs) != 0 {
		t.Fatalf("expired snapshot entry resurrected: %v", lrcs)
	}
	if lrcs, _ := standby.QueryLRCs(ctx, "lfn://fresh"); len(lrcs) != 1 {
		t.Fatalf("import overwrote the standby's fresher filter: %v", lrcs)
	}
}
