// Package rli implements the Replica Location Index service: it aggregates
// soft state from one or more LRCs and answers "which LRCs know this logical
// name" queries.
//
// Two storage paths coexist, matching RLS 2.0.9 (§3.1, §3.4):
//
//   - LRCs sending full or incremental (uncompressed) updates populate a
//     relational database (rdb.RLIDB) whose t_map rows carry update
//     timestamps; an expire thread periodically discards entries older than
//     the timeout interval.
//
//   - LRCs sending Bloom filter updates are summarized entirely in memory —
//     "no database is used in the RLI; Bloom filters are instead stored in
//     RLI memory, which provides fast soft state update and query
//     performance". A query hashes the probe name against every stored
//     filter.
//
// Bloom filter entries participate in soft state expiration too: a filter
// not refreshed within the timeout is dropped.
package rli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/bloom"
	"repro/internal/clock"
	"repro/internal/rdb"
	"repro/internal/wire"
)

// Defaults for the expire thread.
const (
	// DefaultTimeout is how long soft state lives without a refresh.
	DefaultTimeout = 30 * time.Minute
	// DefaultExpireInterval is how often the expire thread runs.
	DefaultExpireInterval = time.Minute
)

// Config configures a Service.
type Config struct {
	// URL is this RLI's advertised address.
	URL string
	// DB stores uncompressed soft state. Optional: an RLI that only ever
	// receives Bloom updates runs without one.
	DB *rdb.RLIDB
	// Clock drives expiration; defaults to the real clock.
	Clock clock.Clock
	// Timeout is the soft state lifetime; DefaultTimeout if zero.
	Timeout time.Duration
	// ExpireInterval is the expire-thread period; DefaultExpireInterval if
	// zero.
	ExpireInterval time.Duration
	// Logger receives operational warnings (truncated full updates, snapshot
	// imports). Nil discards.
	Logger *slog.Logger
}

// Service is a running Replica Location Index.
type Service struct {
	cfg Config
	db  *rdb.RLIDB
	clk clock.Clock

	mu      sync.RWMutex
	filters map[string]*filterEntry // LRC url -> latest Bloom filter

	// sessions tracks in-progress full updates by sending LRC, so a stream
	// that dies mid-update can be aborted by the client or reaped by the
	// expire thread instead of lingering half-open forever.
	sessions map[string]*fullSession
	// lastRefresh records when each LRC's database-backed soft state was
	// last fed (completed full update or incremental). Queries flag answers
	// as stale when a contributing LRC has outlived the timeout without a
	// refresh — served, but flagged, per the soft-state contract.
	lastRefresh map[string]time.Time

	forward parentState // hierarchical-RLI forwarding (§7 extension)

	stop chan struct{}
	wg   sync.WaitGroup

	stats Stats
}

type filterEntry struct {
	bitmap   *bloom.Bitmap
	received time.Time
}

// fullSession is one in-progress full update from an LRC.
type fullSession struct {
	started      time.Time
	lastActivity time.Time
	names        int64
	// total is the name count the LRC advertised in SSFullStart. FullEnd
	// checks the streamed count against it: a short stream means batches
	// were lost in transit and the "completed" update is actually partial.
	total uint64
}

// Stats counts RLI activity.
type Stats struct {
	FullUpdates        int64
	IncrementalUpdates int64
	BloomUpdates       int64
	NamesIngested      int64
	Expired            int64
	// ExpireErrors counts expire passes that failed; the entries stay and
	// are retried on the next tick, so a nonzero value with a growing index
	// points at a stuck database, not at lost updates.
	ExpireErrors int64
	Queries      int64
	// StaleAnswers counts queries answered with at least one contributing
	// LRC whose soft state had outlived the timeout without a refresh.
	StaleAnswers int64
	// SessionsExpired counts half-open full-update sessions reaped by the
	// expire thread; SessionsAborted counts sessions discarded by an
	// explicit client abort.
	SessionsExpired int64
	SessionsAborted int64
	// TruncatedFulls counts full updates whose SSFullEnd arrived with fewer
	// names streamed than SSFullStart advertised — the stream was truncated
	// but still delivered its end marker. The names that did arrive are kept
	// (valid soft state); the LRC's next full pass repairs the gap.
	TruncatedFulls int64
	// SnapshotExports / SnapshotImports count warm-standby bootstrap
	// transfers of the in-memory Bloom store.
	SnapshotExports int64
	SnapshotImports int64
}

// New creates the service.
func New(cfg Config) (*Service, error) {
	if cfg.URL == "" {
		return nil, errors.New("rli: Config.URL is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.ExpireInterval <= 0 {
		cfg.ExpireInterval = DefaultExpireInterval
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Service{
		cfg:         cfg,
		db:          cfg.DB,
		clk:         cfg.Clock,
		filters:     make(map[string]*filterEntry),
		sessions:    make(map[string]*fullSession),
		lastRefresh: make(map[string]time.Time),
		stop:        make(chan struct{}),
	}, nil
}

// Start launches the expire thread.
func (s *Service) Start() {
	s.wg.Add(1)
	go s.expireLoop()
}

// Close stops the expire thread.
func (s *Service) Close() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.wg.Wait()
}

// URL returns the RLI's advertised address.
func (s *Service) URL() string { return s.cfg.URL }

// DB exposes the index database (nil for Bloom-only deployments).
func (s *Service) DB() *rdb.RLIDB { return s.db }

// Stats returns a snapshot of counters.
func (s *Service) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// errNoDB reports an uncompressed update arriving at a Bloom-only RLI.
var errNoDB = fmt.Errorf("%w: this RLI has no database for uncompressed updates", rdb.ErrInvalid)

// Update handlers mirror the Updater interface the server dispatches into.
// The rdb layer has no context plumbing (its blocking comes from the
// simulated disk), so the ctx.Err() entry check is the cancellation
// boundary for the database-backed paths.

// HandleFullStart begins a full update from an LRC, opening a session keyed
// by the sending LRC's url. State from prior full updates is not dropped
// here: stale entries age out via expiration, per the soft state model. A
// Start arriving while a session is already open replaces it — the previous
// stream died without an End or Abort.
func (s *Service) HandleFullStart(ctx context.Context, lrcURL string, total uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.db == nil {
		return errNoDB
	}
	now := s.clk.Now()
	s.mu.Lock()
	s.stats.FullUpdates++
	s.sessions[lrcURL] = &fullSession{started: now, lastActivity: now, total: total}
	s.mu.Unlock()
	return nil
}

// HandleFullBatch ingests one batch of a full update.
func (s *Service) HandleFullBatch(ctx context.Context, lrcURL string, names []string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.db == nil {
		return errNoDB
	}
	now := s.clk.Now()
	if err := s.db.UpsertNames(lrcURL, names, now); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.NamesIngested += int64(len(names))
	if sess := s.sessions[lrcURL]; sess != nil {
		sess.lastActivity = now
		sess.names += int64(len(names))
	}
	s.mu.Unlock()
	return nil
}

// HandleFullEnd completes a full update, closing the session and recording
// the LRC's refresh time for staleness accounting. A stream that delivered
// fewer names than SSFullStart advertised is counted as truncated: the end
// marker alone does not prove completeness, and treating a short stream as a
// full refresh would let a lossy path masquerade as healthy soft state.
func (s *Service) HandleFullEnd(ctx context.Context, lrcURL string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.db == nil {
		return errNoDB
	}
	s.mu.Lock()
	if sess := s.sessions[lrcURL]; sess != nil && sess.total > 0 && uint64(sess.names) < sess.total {
		s.stats.TruncatedFulls++
		s.cfg.Logger.Warn("rli: truncated full update",
			"lrc", lrcURL, "advertised", sess.total, "streamed", sess.names)
	}
	delete(s.sessions, lrcURL)
	s.lastRefresh[lrcURL] = s.clk.Now()
	s.mu.Unlock()
	return nil
}

// HandleFullAbort discards a half-finished full-update session. The names
// already upserted stay — they are valid soft state and age out normally —
// but the session stops occupying the table. Aborting with no session open
// is a no-op: the abort is the client's best-effort cleanup and may race
// session expiry.
func (s *Service) HandleFullAbort(ctx context.Context, lrcURL string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.mu.Lock()
	if _, ok := s.sessions[lrcURL]; ok {
		delete(s.sessions, lrcURL)
		s.stats.SessionsAborted++
	}
	s.mu.Unlock()
	return nil
}

// HandleIncremental ingests an immediate-mode update.
func (s *Service) HandleIncremental(ctx context.Context, lrcURL string, added, removed []string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.db == nil {
		return errNoDB
	}
	now := s.clk.Now()
	if err := s.db.UpsertNames(lrcURL, added, now); err != nil {
		return err
	}
	if err := s.db.RemoveNames(lrcURL, removed); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.IncrementalUpdates++
	s.stats.NamesIngested += int64(len(added))
	s.lastRefresh[lrcURL] = now
	s.mu.Unlock()
	return nil
}

// HandleBloom stores an LRC's Bloom filter, replacing any previous one.
func (s *Service) HandleBloom(ctx context.Context, lrcURL string, payload []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var bm bloom.Bitmap
	if err := bm.UnmarshalBinary(payload); err != nil {
		return errors.Join(rdb.ErrInvalid, err)
	}
	now := s.clk.Now()
	s.mu.Lock()
	s.filters[lrcURL] = &filterEntry{bitmap: &bm, received: now}
	// A Bloom update is a refresh of the LRC's soft state like any other:
	// recording it here is what lets queries flag a Bloom-only LRC as stale
	// once it stops sending.
	s.lastRefresh[lrcURL] = now
	s.stats.BloomUpdates++
	s.mu.Unlock()
	return nil
}

// QueryLRCs returns the LRC urls that may hold mappings for the logical
// name: exact matches from the database union probabilistic matches from the
// in-memory Bloom filters (false positives possible at ~1%, paper §3.4).
func (s *Service) QueryLRCs(ctx context.Context, logical string) ([]string, error) {
	urls, _, err := s.QueryLRCsDetailed(ctx, logical)
	return urls, err
}

// QueryLRCsDetailed is QueryLRCs plus a staleness flag: the answer is stale
// when any contributing LRC's soft state has outlived the timeout without a
// refresh. Soft state is served until the expire thread reaps it, so in the
// window between timeout and sweep the answer may describe an LRC that has
// gone away — the flag lets clients decide whether to trust it.
func (s *Service) QueryLRCsDetailed(ctx context.Context, logical string) ([]string, bool, error) {
	if err := ctx.Err(); err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	s.stats.Queries++
	s.mu.Unlock()

	set := make(map[string]bool)
	if s.db != nil {
		urls, err := s.db.QueryLRCs(logical)
		if err != nil && !errors.Is(err, rdb.ErrNotFound) {
			return nil, false, err
		}
		for _, u := range urls {
			set[u] = true
		}
	}
	cutoff := s.clk.Now().Add(-s.cfg.Timeout)
	stale := false
	s.mu.RLock()
	for url, fe := range s.filters {
		if fe.bitmap.Test(logical) {
			set[url] = true
		}
	}
	for url := range set {
		if fe, ok := s.filters[url]; ok && !fe.received.Before(cutoff) {
			continue // a fresh filter vouches for the LRC
		}
		if ts, ok := s.lastRefresh[url]; ok && ts.Before(cutoff) {
			stale = true
		}
	}
	s.mu.RUnlock()
	if len(set) == 0 {
		return nil, false, fmt.Errorf("%w: logical name %q", rdb.ErrNotFound, logical)
	}
	if stale {
		s.mu.Lock()
		s.stats.StaleAnswers++
		s.mu.Unlock()
	}
	out := make([]string, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Strings(out)
	return out, stale, nil
}

// WildcardQuery answers wildcard queries from the database. Bloom-filter
// state cannot be enumerated — the capability cost of compression the paper
// notes in §5.4 — so filters contribute nothing here.
func (s *Service) WildcardQuery(ctx context.Context, pattern string) ([]wire.Mapping, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.db == nil {
		return nil, fmt.Errorf("%w: wildcard queries are not possible over Bloom filter state", rdb.ErrInvalid)
	}
	return s.db.WildcardQuery(pattern)
}

// BulkQuery resolves many logical names.
func (s *Service) BulkQuery(ctx context.Context, names []string) []wire.BulkNameResult {
	out := make([]wire.BulkNameResult, 0, len(names))
	for _, n := range names {
		values, err := s.QueryLRCs(ctx, n)
		out = append(out, wire.BulkNameResult{Name: n, Found: err == nil, Values: values})
	}
	return out
}

// LRCs lists the LRCs known to this RLI, from both storage paths.
func (s *Service) LRCs(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	if s.db != nil {
		urls, err := s.db.LRCs()
		if err != nil {
			return nil, err
		}
		for _, u := range urls {
			set[u] = true
		}
	}
	s.mu.RLock()
	for url := range s.filters {
		set[url] = true
	}
	s.mu.RUnlock()
	out := make([]string, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Strings(out)
	return out, nil
}

// FilterCount reports how many Bloom filters are resident.
func (s *Service) FilterCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.filters)
}

// BloomBytes reports the total resident size of the in-memory Bloom store —
// the RLI-side cost of compressed soft state (paper Table 3).
func (s *Service) BloomBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, fe := range s.filters {
		total += int64(fe.bitmap.SizeBytes())
	}
	return total
}

// Counts reports index occupancy (database associations; Bloom filters are
// opaque).
func (s *Service) Counts(ctx context.Context) (logicals, lrcs, associations int64, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, 0, err
	}
	if s.db == nil {
		return 0, int64(s.FilterCount()), 0, nil
	}
	return s.db.Counts()
}

// ExpireNow runs one expiration pass, returning dropped database
// associations plus dropped Bloom filters.
func (s *Service) ExpireNow(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	cutoff := s.clk.Now().Add(-s.cfg.Timeout)
	dropped := 0
	if s.db != nil {
		n, err := s.db.ExpireBefore(cutoff)
		if err != nil {
			return 0, err
		}
		dropped += n
	}
	s.mu.Lock()
	for url, fe := range s.filters {
		if fe.received.Before(cutoff) {
			delete(s.filters, url)
			dropped++
		}
	}
	s.stats.Expired += int64(dropped)
	// Reap half-open full-update sessions whose stream went silent: an LRC
	// that died mid-update never sends End or Abort, and without this sweep
	// its session would sit in the table forever.
	for url, sess := range s.sessions {
		if sess.lastActivity.Before(cutoff) {
			delete(s.sessions, url)
			s.stats.SessionsExpired++
		}
	}
	s.mu.Unlock()
	return dropped, nil
}

// SessionCount reports how many full-update sessions are currently open.
func (s *Service) SessionCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sessions)
}

// expireLoop is the expire thread: "An expire thread runs periodically and
// examines timestamps in the RLI mapping table, discarding entries older
// than the allowed timeout interval."
func (s *Service) expireLoop() {
	defer s.wg.Done()
	t := s.clk.NewTicker(s.cfg.ExpireInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C():
			if _, err := s.ExpireNow(context.Background()); err != nil {
				s.mu.Lock()
				s.stats.ExpireErrors++
				s.mu.Unlock()
			}
		}
	}
}
