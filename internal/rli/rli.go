// Package rli implements the Replica Location Index service: it aggregates
// soft state from one or more LRCs and answers "which LRCs know this logical
// name" queries.
//
// Two storage paths coexist, matching RLS 2.0.9 (§3.1, §3.4):
//
//   - LRCs sending full or incremental (uncompressed) updates populate a
//     relational database (rdb.RLIDB) whose t_map rows carry update
//     timestamps; an expire thread periodically discards entries older than
//     the timeout interval.
//
//   - LRCs sending Bloom filter updates are summarized entirely in memory —
//     "no database is used in the RLI; Bloom filters are instead stored in
//     RLI memory, which provides fast soft state update and query
//     performance". A query hashes the probe name against every stored
//     filter.
//
// Bloom filter entries participate in soft state expiration too: a filter
// not refreshed within the timeout is dropped.
package rli

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bloom"
	"repro/internal/clock"
	"repro/internal/rdb"
	"repro/internal/wire"
)

// Defaults for the expire thread.
const (
	// DefaultTimeout is how long soft state lives without a refresh.
	DefaultTimeout = 30 * time.Minute
	// DefaultExpireInterval is how often the expire thread runs.
	DefaultExpireInterval = time.Minute
)

// Config configures a Service.
type Config struct {
	// URL is this RLI's advertised address.
	URL string
	// DB stores uncompressed soft state. Optional: an RLI that only ever
	// receives Bloom updates runs without one.
	DB *rdb.RLIDB
	// Clock drives expiration; defaults to the real clock.
	Clock clock.Clock
	// Timeout is the soft state lifetime; DefaultTimeout if zero.
	Timeout time.Duration
	// ExpireInterval is the expire-thread period; DefaultExpireInterval if
	// zero.
	ExpireInterval time.Duration
}

// Service is a running Replica Location Index.
type Service struct {
	cfg Config
	db  *rdb.RLIDB
	clk clock.Clock

	mu      sync.RWMutex
	filters map[string]*filterEntry // LRC url -> latest Bloom filter

	forward parentState // hierarchical-RLI forwarding (§7 extension)

	stop chan struct{}
	wg   sync.WaitGroup

	stats Stats
}

type filterEntry struct {
	bitmap   *bloom.Bitmap
	received time.Time
}

// Stats counts RLI activity.
type Stats struct {
	FullUpdates        int64
	IncrementalUpdates int64
	BloomUpdates       int64
	NamesIngested      int64
	Expired            int64
	// ExpireErrors counts expire passes that failed; the entries stay and
	// are retried on the next tick, so a nonzero value with a growing index
	// points at a stuck database, not at lost updates.
	ExpireErrors int64
	Queries      int64
}

// New creates the service.
func New(cfg Config) (*Service, error) {
	if cfg.URL == "" {
		return nil, errors.New("rli: Config.URL is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.ExpireInterval <= 0 {
		cfg.ExpireInterval = DefaultExpireInterval
	}
	return &Service{
		cfg:     cfg,
		db:      cfg.DB,
		clk:     cfg.Clock,
		filters: make(map[string]*filterEntry),
		stop:    make(chan struct{}),
	}, nil
}

// Start launches the expire thread.
func (s *Service) Start() {
	s.wg.Add(1)
	go s.expireLoop()
}

// Close stops the expire thread.
func (s *Service) Close() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.wg.Wait()
}

// URL returns the RLI's advertised address.
func (s *Service) URL() string { return s.cfg.URL }

// DB exposes the index database (nil for Bloom-only deployments).
func (s *Service) DB() *rdb.RLIDB { return s.db }

// Stats returns a snapshot of counters.
func (s *Service) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stats
}

// errNoDB reports an uncompressed update arriving at a Bloom-only RLI.
var errNoDB = fmt.Errorf("%w: this RLI has no database for uncompressed updates", rdb.ErrInvalid)

// Update handlers mirror the Updater interface the server dispatches into.
// The rdb layer has no context plumbing (its blocking comes from the
// simulated disk), so the ctx.Err() entry check is the cancellation
// boundary for the database-backed paths.

// HandleFullStart begins a full update from an LRC. State from prior full
// updates is not dropped here: stale entries age out via expiration, per the
// soft state model.
func (s *Service) HandleFullStart(ctx context.Context, lrcURL string, total uint64) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.db == nil {
		return errNoDB
	}
	s.mu.Lock()
	s.stats.FullUpdates++
	s.mu.Unlock()
	return nil
}

// HandleFullBatch ingests one batch of a full update.
func (s *Service) HandleFullBatch(ctx context.Context, lrcURL string, names []string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.db == nil {
		return errNoDB
	}
	if err := s.db.UpsertNames(lrcURL, names, s.clk.Now()); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.NamesIngested += int64(len(names))
	s.mu.Unlock()
	return nil
}

// HandleFullEnd completes a full update.
func (s *Service) HandleFullEnd(ctx context.Context, lrcURL string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.db == nil {
		return errNoDB
	}
	return nil
}

// HandleIncremental ingests an immediate-mode update.
func (s *Service) HandleIncremental(ctx context.Context, lrcURL string, added, removed []string) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if s.db == nil {
		return errNoDB
	}
	if err := s.db.UpsertNames(lrcURL, added, s.clk.Now()); err != nil {
		return err
	}
	if err := s.db.RemoveNames(lrcURL, removed); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.IncrementalUpdates++
	s.stats.NamesIngested += int64(len(added))
	s.mu.Unlock()
	return nil
}

// HandleBloom stores an LRC's Bloom filter, replacing any previous one.
func (s *Service) HandleBloom(ctx context.Context, lrcURL string, payload []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	var bm bloom.Bitmap
	if err := bm.UnmarshalBinary(payload); err != nil {
		return errors.Join(rdb.ErrInvalid, err)
	}
	s.mu.Lock()
	s.filters[lrcURL] = &filterEntry{bitmap: &bm, received: s.clk.Now()}
	s.stats.BloomUpdates++
	s.mu.Unlock()
	return nil
}

// QueryLRCs returns the LRC urls that may hold mappings for the logical
// name: exact matches from the database union probabilistic matches from the
// in-memory Bloom filters (false positives possible at ~1%, paper §3.4).
func (s *Service) QueryLRCs(ctx context.Context, logical string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.stats.Queries++
	s.mu.Unlock()

	set := make(map[string]bool)
	if s.db != nil {
		urls, err := s.db.QueryLRCs(logical)
		if err != nil && !errors.Is(err, rdb.ErrNotFound) {
			return nil, err
		}
		for _, u := range urls {
			set[u] = true
		}
	}
	s.mu.RLock()
	for url, fe := range s.filters {
		if fe.bitmap.Test(logical) {
			set[url] = true
		}
	}
	s.mu.RUnlock()
	if len(set) == 0 {
		return nil, fmt.Errorf("%w: logical name %q", rdb.ErrNotFound, logical)
	}
	out := make([]string, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Strings(out)
	return out, nil
}

// WildcardQuery answers wildcard queries from the database. Bloom-filter
// state cannot be enumerated — the capability cost of compression the paper
// notes in §5.4 — so filters contribute nothing here.
func (s *Service) WildcardQuery(ctx context.Context, pattern string) ([]wire.Mapping, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.db == nil {
		return nil, fmt.Errorf("%w: wildcard queries are not possible over Bloom filter state", rdb.ErrInvalid)
	}
	return s.db.WildcardQuery(pattern)
}

// BulkQuery resolves many logical names.
func (s *Service) BulkQuery(ctx context.Context, names []string) []wire.BulkNameResult {
	out := make([]wire.BulkNameResult, 0, len(names))
	for _, n := range names {
		values, err := s.QueryLRCs(ctx, n)
		out = append(out, wire.BulkNameResult{Name: n, Found: err == nil, Values: values})
	}
	return out
}

// LRCs lists the LRCs known to this RLI, from both storage paths.
func (s *Service) LRCs(ctx context.Context) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	set := make(map[string]bool)
	if s.db != nil {
		urls, err := s.db.LRCs()
		if err != nil {
			return nil, err
		}
		for _, u := range urls {
			set[u] = true
		}
	}
	s.mu.RLock()
	for url := range s.filters {
		set[url] = true
	}
	s.mu.RUnlock()
	out := make([]string, 0, len(set))
	for u := range set {
		out = append(out, u)
	}
	sort.Strings(out)
	return out, nil
}

// FilterCount reports how many Bloom filters are resident.
func (s *Service) FilterCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.filters)
}

// BloomBytes reports the total resident size of the in-memory Bloom store —
// the RLI-side cost of compressed soft state (paper Table 3).
func (s *Service) BloomBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, fe := range s.filters {
		total += int64(fe.bitmap.SizeBytes())
	}
	return total
}

// Counts reports index occupancy (database associations; Bloom filters are
// opaque).
func (s *Service) Counts(ctx context.Context) (logicals, lrcs, associations int64, err error) {
	if err := ctx.Err(); err != nil {
		return 0, 0, 0, err
	}
	if s.db == nil {
		return 0, int64(s.FilterCount()), 0, nil
	}
	return s.db.Counts()
}

// ExpireNow runs one expiration pass, returning dropped database
// associations plus dropped Bloom filters.
func (s *Service) ExpireNow(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	cutoff := s.clk.Now().Add(-s.cfg.Timeout)
	dropped := 0
	if s.db != nil {
		n, err := s.db.ExpireBefore(cutoff)
		if err != nil {
			return 0, err
		}
		dropped += n
	}
	s.mu.Lock()
	for url, fe := range s.filters {
		if fe.received.Before(cutoff) {
			delete(s.filters, url)
			dropped++
		}
	}
	s.stats.Expired += int64(dropped)
	s.mu.Unlock()
	return dropped, nil
}

// expireLoop is the expire thread: "An expire thread runs periodically and
// examines timestamps in the RLI mapping table, discarding entries older
// than the allowed timeout interval."
func (s *Service) expireLoop() {
	defer s.wg.Done()
	t := s.clk.NewTicker(s.cfg.ExpireInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C():
			if _, err := s.ExpireNow(context.Background()); err != nil {
				s.mu.Lock()
				s.stats.ExpireErrors++
				s.mu.Unlock()
			}
		}
	}
}
