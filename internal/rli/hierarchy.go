package rli

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Hierarchical RLIs are the extension the paper's §7 describes: "The latest
// RLS version includes support for a hierarchy of RLI servers that update
// one another." A leaf RLI aggregates LRCs; an interior RLI aggregates
// other RLIs, so a single query at the root can locate data registered
// anywhere below it.
//
// Forwarding preserves resolution semantics: an RLI forwards its state
// keyed by the *originating LRC url*, so a parent's query answer still
// points the client at the LRCs that actually hold the mappings, exactly
// as if those LRCs updated the parent directly. Database-backed state is
// forwarded as full updates grouped per source LRC; Bloom filters are
// forwarded bitmap-for-bitmap.

// Updater is the RLI's view of a connection to a parent RLI. It is
// structurally identical to lrc.Updater, so the client package satisfies
// both; it is redeclared here so the rli package does not depend on lrc.
type Updater interface {
	SSFullStart(ctx context.Context, lrcURL string, total uint64) error
	SSFullBatch(ctx context.Context, lrcURL string, names []string) error
	SSFullEnd(ctx context.Context, lrcURL string) error
	SSIncremental(ctx context.Context, lrcURL string, added, removed []string) error
	SSBloom(ctx context.Context, lrcURL string, bitmap []byte) error
	Close() error
}

// Dialer opens an Updater to the parent RLI at the given url.
type Dialer func(ctx context.Context, url string) (Updater, error)

// parentState tracks the forwarding configuration, which is runtime state
// like the in-memory Bloom store (the paper's 2.0.9 had no persistent
// hierarchy configuration either).
type parentState struct {
	mu      sync.Mutex
	dial    Dialer
	parents map[string]bool
	batch   int
}

// ConfigureForwarding installs the dialer used to reach parent RLIs. It
// must be called before AddParent.
func (s *Service) ConfigureForwarding(dial Dialer, batchSize int) {
	if batchSize <= 0 {
		batchSize = 5000
	}
	s.forward.mu.Lock()
	defer s.forward.mu.Unlock()
	s.forward.dial = dial
	s.forward.batch = batchSize
	if s.forward.parents == nil {
		s.forward.parents = make(map[string]bool)
	}
}

// AddParent registers a parent RLI to forward aggregated state to.
func (s *Service) AddParent(url string) error {
	s.forward.mu.Lock()
	defer s.forward.mu.Unlock()
	if s.forward.dial == nil {
		return fmt.Errorf("rli: ConfigureForwarding must be called before AddParent")
	}
	if url == "" || url == s.cfg.URL {
		return fmt.Errorf("rli: invalid parent url %q", url)
	}
	if s.forward.parents[url] {
		return fmt.Errorf("rli: parent %q already registered", url)
	}
	s.forward.parents[url] = true
	return nil
}

// RemoveParent stops forwarding to a parent.
func (s *Service) RemoveParent(url string) error {
	s.forward.mu.Lock()
	defer s.forward.mu.Unlock()
	if !s.forward.parents[url] {
		return fmt.Errorf("rli: no parent %q", url)
	}
	delete(s.forward.parents, url)
	return nil
}

// Parents lists the registered parent RLIs, sorted.
func (s *Service) Parents() []string {
	s.forward.mu.Lock()
	defer s.forward.mu.Unlock()
	out := make([]string, 0, len(s.forward.parents))
	for url := range s.forward.parents {
		out = append(out, url)
	}
	sort.Strings(out)
	return out
}

// ForwardResult reports one forwarding pass to one parent.
type ForwardResult struct {
	Parent  string
	Sources int // originating LRCs covered
	Names   int // names forwarded from database state
	Blooms  int // Bloom filters forwarded
	Elapsed time.Duration
	Err     error
}

// ForwardAll pushes this RLI's aggregated state to every parent now. The
// context bounds the whole pass.
func (s *Service) ForwardAll(ctx context.Context) []ForwardResult {
	s.forward.mu.Lock()
	dial := s.forward.dial
	batch := s.forward.batch
	parents := make([]string, 0, len(s.forward.parents))
	for url := range s.forward.parents {
		parents = append(parents, url)
	}
	s.forward.mu.Unlock()
	sort.Strings(parents)

	out := make([]ForwardResult, 0, len(parents))
	for _, parent := range parents {
		out = append(out, s.forwardTo(ctx, dial, parent, batch))
	}
	return out
}

func (s *Service) forwardTo(ctx context.Context, dial Dialer, parent string, batch int) (res ForwardResult) {
	res = ForwardResult{Parent: parent}
	start := s.clk.Now()
	defer func() { res.Elapsed = s.clk.Now().Sub(start) }()

	up, err := dial(ctx, parent)
	if err != nil {
		res.Err = err
		return res
	}
	defer up.Close()

	// Database-backed state: per originating LRC, a full update carrying
	// that LRC's names.
	if s.db != nil {
		lrcs, err := s.db.LRCs()
		if err != nil {
			res.Err = err
			return res
		}
		for _, lrcURL := range lrcs {
			names, err := s.db.NamesForLRC(lrcURL)
			if err != nil {
				res.Err = err
				return res
			}
			if len(names) == 0 {
				continue
			}
			if err := up.SSFullStart(ctx, lrcURL, uint64(len(names))); err != nil {
				res.Err = err
				return res
			}
			for lo := 0; lo < len(names); lo += batch {
				hi := lo + batch
				if hi > len(names) {
					hi = len(names)
				}
				if err := up.SSFullBatch(ctx, lrcURL, names[lo:hi]); err != nil {
					res.Err = err
					return res
				}
			}
			if err := up.SSFullEnd(ctx, lrcURL); err != nil {
				res.Err = err
				return res
			}
			res.Sources++
			res.Names += len(names)
		}
	}

	// Bloom state: forward each filter under its originating LRC.
	s.mu.RLock()
	type bloomItem struct {
		url  string
		data *filterEntry
	}
	blooms := make([]bloomItem, 0, len(s.filters))
	for url, fe := range s.filters {
		blooms = append(blooms, bloomItem{url: url, data: fe})
	}
	s.mu.RUnlock()
	sort.Slice(blooms, func(i, j int) bool { return blooms[i].url < blooms[j].url })
	for _, b := range blooms {
		payload, err := b.data.bitmap.MarshalBinary()
		if err != nil {
			res.Err = err
			return res
		}
		if err := up.SSBloom(ctx, b.url, payload); err != nil {
			res.Err = err
			return res
		}
		res.Sources++
		res.Blooms++
	}
	return res
}

// StartForwardLoop launches a background loop pushing ForwardAll every
// interval — the hierarchy analogue of the LRC's periodic full updates,
// keeping parent soft state refreshed ahead of its expiration timeout.
// Stops when the service closes.
func (s *Service) StartForwardLoop(interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("rli: non-positive forward interval")
	}
	s.forward.mu.Lock()
	configured := s.forward.dial != nil
	s.forward.mu.Unlock()
	if !configured {
		return fmt.Errorf("rli: ConfigureForwarding must be called before StartForwardLoop")
	}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		t := s.clk.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C():
				s.ForwardAll(context.Background())
			}
		}
	}()
	return nil
}

// NamesForLRC is defined on the database in rlidb.go; this thin wrapper
// exposes it at the service level for diagnostics.
func (s *Service) NamesForLRC(ctx context.Context, lrcURL string) ([]string, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.db == nil {
		return nil, fmt.Errorf("rli: no database state")
	}
	return s.db.NamesForLRC(lrcURL)
}
