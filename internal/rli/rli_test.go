package rli

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/bloom"
	"repro/internal/clock"
	"repro/internal/disk"
	"repro/internal/rdb"
	"repro/internal/storage"
)

func newTestRLI(t *testing.T, mutate func(*Config)) *Service {
	t.Helper()
	eng := storage.OpenMemory(storage.Options{Device: disk.New(disk.Fast())})
	t.Cleanup(func() { eng.Close() })
	db, err := rdb.NewRLIDB(eng)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{URL: "rls://rli-test", DB: db}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func bloomPayload(t *testing.T, names ...string) []byte {
	t.Helper()
	f := bloom.New(len(names) + 100)
	for _, n := range names {
		f.Add(n)
	}
	data, err := f.Bitmap().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestFullUpdateFlow(t *testing.T) {
	s := newTestRLI(t, nil)
	if err := s.HandleFullStart(ctx, "rls://lrc1", 3); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleFullBatch(ctx, "rls://lrc1", []string{"lfn://a", "lfn://b"}); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleFullBatch(ctx, "rls://lrc1", []string{"lfn://c"}); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleFullEnd(ctx, "rls://lrc1"); err != nil {
		t.Fatal(err)
	}
	lrcs, err := s.QueryLRCs(ctx, "lfn://b")
	if err != nil || len(lrcs) != 1 || lrcs[0] != "rls://lrc1" {
		t.Fatalf("QueryLRCs = %v, %v", lrcs, err)
	}
	st := s.Stats()
	if st.FullUpdates != 1 || st.NamesIngested != 3 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestIncrementalUpdate(t *testing.T) {
	s := newTestRLI(t, nil)
	if err := s.HandleIncremental(ctx, "rls://lrc1", []string{"lfn://a"}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.QueryLRCs(ctx, "lfn://a"); err != nil {
		t.Fatal(err)
	}
	if err := s.HandleIncremental(ctx, "rls://lrc1", nil, []string{"lfn://a"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.QueryLRCs(ctx, "lfn://a"); !errors.Is(err, rdb.ErrNotFound) {
		t.Fatalf("after removal = %v", err)
	}
}

func TestBloomQueryPath(t *testing.T) {
	s := newTestRLI(t, nil)
	if err := s.HandleBloom(ctx, "rls://lrc9", bloomPayload(t, "lfn://x", "lfn://y")); err != nil {
		t.Fatal(err)
	}
	lrcs, err := s.QueryLRCs(ctx, "lfn://x")
	if err != nil || len(lrcs) != 1 || lrcs[0] != "rls://lrc9" {
		t.Fatalf("bloom query = %v, %v", lrcs, err)
	}
	if s.FilterCount() != 1 {
		t.Fatalf("FilterCount = %d", s.FilterCount())
	}
	// Replacement, not accumulation.
	if err := s.HandleBloom(ctx, "rls://lrc9", bloomPayload(t, "lfn://z")); err != nil {
		t.Fatal(err)
	}
	if s.FilterCount() != 1 {
		t.Fatalf("FilterCount after replace = %d", s.FilterCount())
	}
	if _, err := s.QueryLRCs(ctx, "lfn://x"); !errors.Is(err, rdb.ErrNotFound) {
		t.Fatalf("old filter contents survived replacement: %v", err)
	}
}

func TestBloomRejectsGarbage(t *testing.T) {
	s := newTestRLI(t, nil)
	if err := s.HandleBloom(ctx, "rls://lrc1", []byte{1, 2, 3}); !errors.Is(err, rdb.ErrInvalid) {
		t.Fatalf("garbage bitmap = %v", err)
	}
}

func TestQueryMergesDatabaseAndBloom(t *testing.T) {
	s := newTestRLI(t, nil)
	s.HandleIncremental(ctx, "rls://lrc-db", []string{"lfn://shared"}, nil)
	s.HandleBloom(ctx, "rls://lrc-bloom", bloomPayload(t, "lfn://shared"))
	lrcs, err := s.QueryLRCs(ctx, "lfn://shared")
	if err != nil {
		t.Fatal(err)
	}
	if len(lrcs) != 2 {
		t.Fatalf("merged query = %v, want both LRCs", lrcs)
	}
}

func TestBloomOnlyService(t *testing.T) {
	s, err := New(Config{URL: "rls://bloom-only"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.HandleFullStart(ctx, "rls://lrc1", 1); !errors.Is(err, rdb.ErrInvalid) {
		t.Fatalf("full update on bloom-only RLI = %v", err)
	}
	if err := s.HandleIncremental(ctx, "rls://lrc1", []string{"x"}, nil); !errors.Is(err, rdb.ErrInvalid) {
		t.Fatalf("incremental on bloom-only RLI = %v", err)
	}
	if err := s.HandleBloom(ctx, "rls://lrc1", bloomPayloadStandalone("lfn://a")); err != nil {
		t.Fatal(err)
	}
	lrcs, err := s.QueryLRCs(ctx, "lfn://a")
	if err != nil || len(lrcs) != 1 {
		t.Fatalf("query = %v, %v", lrcs, err)
	}
	if _, err := s.WildcardQuery(ctx, "lfn://*"); !errors.Is(err, rdb.ErrInvalid) {
		t.Fatalf("wildcard over bloom = %v, want ErrInvalid", err)
	}
}

func bloomPayloadStandalone(names ...string) []byte {
	f := bloom.New(len(names) + 100)
	for _, n := range names {
		f.Add(n)
	}
	data, _ := f.Bitmap().MarshalBinary()
	return data
}

func TestWildcardQueryUsesDatabase(t *testing.T) {
	s := newTestRLI(t, nil)
	s.HandleIncremental(ctx, "rls://lrc1", []string{"lfn://run/a", "lfn://run/b", "lfn://other"}, nil)
	hits, err := s.WildcardQuery(ctx, "lfn://run/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("wildcard hits = %v", hits)
	}
}

func TestBulkQuery(t *testing.T) {
	s := newTestRLI(t, nil)
	s.HandleIncremental(ctx, "rls://lrc1", []string{"lfn://a"}, nil)
	results := s.BulkQuery(ctx, []string{"lfn://a", "lfn://missing"})
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	if !results[0].Found || results[1].Found {
		t.Fatalf("found flags = %+v", results)
	}
}

func TestExpirationDropsDatabaseEntries(t *testing.T) {
	fc := clock.NewFake(time.Unix(1_000_000, 0))
	s := newTestRLI(t, func(c *Config) {
		c.Clock = fc
		c.Timeout = time.Minute
	})
	s.HandleIncremental(ctx, "rls://lrc1", []string{"lfn://old"}, nil)
	fc.Advance(2 * time.Minute)
	n, err := s.ExpireNow(ctx)
	if err != nil || n != 1 {
		t.Fatalf("ExpireNow = %d, %v; want 1", n, err)
	}
	if _, err := s.QueryLRCs(ctx, "lfn://old"); !errors.Is(err, rdb.ErrNotFound) {
		t.Fatalf("expired entry still visible: %v", err)
	}
}

func TestExpirationDropsStaleBloomFilters(t *testing.T) {
	fc := clock.NewFake(time.Unix(1_000_000, 0))
	s := newTestRLI(t, func(c *Config) {
		c.Clock = fc
		c.Timeout = time.Minute
	})
	s.HandleBloom(ctx, "rls://stale", bloomPayloadStandalone("lfn://a"))
	fc.Advance(30 * time.Second)
	s.HandleBloom(ctx, "rls://fresh", bloomPayloadStandalone("lfn://b"))
	fc.Advance(45 * time.Second) // stale is now 75s old, fresh 45s
	n, err := s.ExpireNow(ctx)
	if err != nil || n != 1 {
		t.Fatalf("ExpireNow = %d, %v; want 1", n, err)
	}
	if s.FilterCount() != 1 {
		t.Fatalf("FilterCount = %d", s.FilterCount())
	}
	if _, err := s.QueryLRCs(ctx, "lfn://b"); err != nil {
		t.Fatal("fresh filter dropped")
	}
}

func TestExpireThreadRunsOnTicker(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	s := newTestRLI(t, func(c *Config) {
		c.Clock = fc
		c.Timeout = time.Minute
		c.ExpireInterval = 10 * time.Second
	})
	s.HandleIncremental(ctx, "rls://lrc1", []string{"lfn://doomed"}, nil)
	s.Start()
	// Wait for the expire loop's ticker to register before advancing.
	deadline := time.Now().Add(5 * time.Second)
	for fc.Pending() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	fc.Advance(2 * time.Minute)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := s.QueryLRCs(ctx, "lfn://doomed"); errors.Is(err, rdb.ErrNotFound) {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("expire thread never dropped the stale entry")
}

func TestRefreshedEntriesSurviveExpiration(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	s := newTestRLI(t, func(c *Config) {
		c.Clock = fc
		c.Timeout = time.Minute
	})
	s.HandleIncremental(ctx, "rls://lrc1", []string{"lfn://kept"}, nil)
	fc.Advance(45 * time.Second)
	// Refresh via a full update batch.
	s.HandleFullBatch(ctx, "rls://lrc1", []string{"lfn://kept"})
	fc.Advance(30 * time.Second) // original now 75s old, refresh 30s
	n, err := s.ExpireNow(ctx)
	if err != nil || n != 0 {
		t.Fatalf("ExpireNow = %d, %v; want 0", n, err)
	}
	if _, err := s.QueryLRCs(ctx, "lfn://kept"); err != nil {
		t.Fatal("refreshed entry expired")
	}
}

func TestSoftStateReconstructionAfterRestart(t *testing.T) {
	// Paper §2: "If an RLI fails and later resumes operation, its state can
	// be reconstructed using soft state updates." Simulate by creating a
	// fresh service (no persistent state) and replaying an LRC's update.
	names := []string{"lfn://a", "lfn://b"}
	s1 := newTestRLI(t, nil)
	s1.HandleFullStart(ctx, "rls://lrc1", uint64(len(names)))
	s1.HandleFullBatch(ctx, "rls://lrc1", names)
	s1.HandleFullEnd(ctx, "rls://lrc1")
	s1.Close() // RLI "fails"

	s2 := newTestRLI(t, nil) // fresh, empty
	if _, err := s2.QueryLRCs(ctx, "lfn://a"); !errors.Is(err, rdb.ErrNotFound) {
		t.Fatal("fresh RLI has state")
	}
	s2.HandleFullStart(ctx, "rls://lrc1", uint64(len(names)))
	s2.HandleFullBatch(ctx, "rls://lrc1", names)
	s2.HandleFullEnd(ctx, "rls://lrc1")
	lrcs, err := s2.QueryLRCs(ctx, "lfn://a")
	if err != nil || len(lrcs) != 1 {
		t.Fatalf("reconstructed state = %v, %v", lrcs, err)
	}
}

func TestLRCsListsBothPaths(t *testing.T) {
	s := newTestRLI(t, nil)
	s.HandleIncremental(ctx, "rls://lrc-db", []string{"lfn://a"}, nil)
	s.HandleBloom(ctx, "rls://lrc-bloom", bloomPayloadStandalone("lfn://b"))
	lrcs, err := s.LRCs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(lrcs) != 2 || lrcs[0] != "rls://lrc-bloom" || lrcs[1] != "rls://lrc-db" {
		t.Fatalf("LRCs = %v", lrcs)
	}
}

func TestManyBloomFiltersQuery(t *testing.T) {
	// The Figure 10 effect: query cost scales with the number of resident
	// filters. Verify correctness with 100 filters.
	s := newTestRLI(t, nil)
	for i := 0; i < 100; i++ {
		url := fmt.Sprintf("rls://lrc%03d", i)
		s.HandleBloom(ctx, url, bloomPayloadStandalone(fmt.Sprintf("lfn://only-at/%03d", i)))
	}
	if s.FilterCount() != 100 {
		t.Fatalf("FilterCount = %d", s.FilterCount())
	}
	lrcs, err := s.QueryLRCs(ctx, "lfn://only-at/042")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, u := range lrcs {
		if u == "rls://lrc042" {
			found = true
		}
	}
	if !found {
		t.Fatalf("owner missing from %v", lrcs)
	}
	// A handful of false positives are acceptable; an avalanche is not.
	if len(lrcs) > 10 {
		t.Fatalf("%d LRCs matched; false positive rate implausibly high", len(lrcs))
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
