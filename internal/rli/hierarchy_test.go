package rli

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
)

// memParent records forwarded soft state in memory, acting as the parent
// RLI endpoint.
type memParent struct {
	mu      sync.Mutex
	full    map[string][]string // lrc url -> names from the last full update
	current map[string][]string
	blooms  map[string][]byte
	fails   int
	calls   int
}

func newMemParent() *memParent {
	return &memParent{
		full:    make(map[string][]string),
		current: make(map[string][]string),
		blooms:  make(map[string][]byte),
	}
}

func (m *memParent) dial(ctx context.Context, url string) (Updater, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.calls++
	if m.fails > 0 {
		m.fails--
		return nil, errors.New("parent unreachable")
	}
	return m, nil
}

func (m *memParent) SSFullStart(ctx context.Context, lrcURL string, total uint64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.current[lrcURL] = nil
	return nil
}

func (m *memParent) SSFullBatch(ctx context.Context, lrcURL string, names []string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.current[lrcURL] = append(m.current[lrcURL], names...)
	return nil
}

func (m *memParent) SSFullEnd(ctx context.Context, lrcURL string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.full[lrcURL] = m.current[lrcURL]
	return nil
}

func (m *memParent) SSIncremental(ctx context.Context, lrcURL string, added, removed []string) error { return nil }

func (m *memParent) SSBloom(ctx context.Context, lrcURL string, bitmap []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blooms[lrcURL] = append([]byte(nil), bitmap...)
	return nil
}

func (m *memParent) Close() error { return nil }

func TestForwardAllGroupsBySourceLRC(t *testing.T) {
	s := newTestRLI(t, nil)
	s.HandleIncremental(ctx, "rls://lrc-a", []string{"lfn://a1", "lfn://a2"}, nil)
	s.HandleIncremental(ctx, "rls://lrc-b", []string{"lfn://b1"}, nil)
	s.HandleBloom(ctx, "rls://lrc-c", bloomPayloadStandalone("lfn://c1"))

	parent := newMemParent()
	s.ConfigureForwarding(parent.dial, 1)
	if err := s.AddParent("rls://parent"); err != nil {
		t.Fatal(err)
	}
	results := s.ForwardAll(ctx)
	if len(results) != 1 || results[0].Err != nil {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Sources != 3 || results[0].Names != 3 || results[0].Blooms != 1 {
		t.Fatalf("result = %+v", results[0])
	}
	parent.mu.Lock()
	defer parent.mu.Unlock()
	if len(parent.full["rls://lrc-a"]) != 2 || len(parent.full["rls://lrc-b"]) != 1 {
		t.Fatalf("parent full state = %+v", parent.full)
	}
	if _, ok := parent.blooms["rls://lrc-c"]; !ok {
		t.Fatalf("parent blooms = %+v", parent.blooms)
	}
}

func TestForwardingConfigGuards(t *testing.T) {
	s := newTestRLI(t, nil)
	if err := s.AddParent("rls://p"); err == nil {
		t.Fatal("AddParent before ConfigureForwarding accepted")
	}
	parent := newMemParent()
	s.ConfigureForwarding(parent.dial, 0) // 0 -> default batch
	if err := s.AddParent(""); err == nil {
		t.Fatal("empty parent accepted")
	}
	if err := s.AddParent(s.URL()); err == nil {
		t.Fatal("self parent accepted")
	}
	if err := s.AddParent("rls://p"); err != nil {
		t.Fatal(err)
	}
	if err := s.AddParent("rls://p"); err == nil {
		t.Fatal("duplicate parent accepted")
	}
	if err := s.StartForwardLoop(0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestForwardLoopRunsOnTicker(t *testing.T) {
	fc := clock.NewFake(time.Unix(0, 0))
	s := newTestRLI(t, func(c *Config) { c.Clock = fc })
	s.HandleIncremental(ctx, "rls://lrc", []string{"lfn://x"}, nil)
	parent := newMemParent()
	s.ConfigureForwarding(parent.dial, 100)
	if err := s.AddParent("rls://parent"); err != nil {
		t.Fatal(err)
	}
	if err := s.StartForwardLoop(time.Minute); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for fc.Pending() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	fc.Advance(time.Minute)
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		parent.mu.Lock()
		n := len(parent.full["rls://lrc"])
		parent.mu.Unlock()
		if n == 1 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("forward loop never pushed state")
}

func TestForwardErrorReported(t *testing.T) {
	s := newTestRLI(t, nil)
	s.HandleIncremental(ctx, "rls://lrc", []string{"lfn://x"}, nil)
	parent := newMemParent()
	parent.fails = 1
	s.ConfigureForwarding(parent.dial, 100)
	s.AddParent("rls://parent")
	results := s.ForwardAll(ctx)
	if results[0].Err == nil {
		t.Fatal("dial failure not reported")
	}
	// Next round succeeds.
	results = s.ForwardAll(ctx)
	if results[0].Err != nil {
		t.Fatal(results[0].Err)
	}
}

func TestNamesForLRCService(t *testing.T) {
	s := newTestRLI(t, nil)
	s.HandleIncremental(ctx, "rls://lrc", []string{"lfn://b", "lfn://a"}, nil)
	names, err := s.NamesForLRC(ctx, "rls://lrc")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "lfn://a" || names[1] != "lfn://b" {
		t.Fatalf("names = %v (want sorted)", names)
	}
	// Unknown LRC: empty, not an error.
	names, err = s.NamesForLRC(ctx, "rls://ghost")
	if err != nil || len(names) != 0 {
		t.Fatalf("ghost = %v, %v", names, err)
	}
	// Bloom-only service has no database to enumerate.
	bloomOnly, _ := New(Config{URL: "rls://b"})
	defer bloomOnly.Close()
	if _, err := bloomOnly.NamesForLRC(ctx, "rls://x"); err == nil {
		t.Fatal("bloom-only enumeration succeeded")
	}
}
