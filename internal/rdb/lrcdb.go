package rdb

import (
	"fmt"
	"sync/atomic"

	"repro/internal/glob"
	"repro/internal/storage"
	"repro/internal/wire"
)

// LRC table and column layout (Figure 3, left side).
const (
	tLFN          = "t_lfn"
	tPFN          = "t_pfn"
	tMap          = "t_map"
	tAttribute    = "t_attribute"
	tStrAttr      = "t_str_attr"
	tIntAttr      = "t_int_attr"
	tFltAttr      = "t_flt_attr"
	tDateAttr     = "t_date_attr"
	tRLI          = "t_rli"
	tRLIPartition = "t_rlipartition"
)

// t_lfn / t_pfn columns: id, name, ref.
const (
	colNameID   = 0
	colNameName = 1
	colNameRef  = 2
)

// t_map columns: lfn_id, pfn_id.
const (
	colMapLFN = 0
	colMapPFN = 1
)

// t_attribute columns: id, name, objtype, type.
const (
	colAttrID      = 0
	colAttrName    = 1
	colAttrObjType = 2
	colAttrValType = 3
)

// typed attribute value tables: obj_id, attr_id, value.
const (
	colValObj   = 0
	colValAttr  = 1
	colValValue = 2
)

// t_rli columns: id, flags, name. Flag bit 0 selects Bloom updates.
const (
	colRLIID    = 0
	colRLIFlags = 1
	colRLIName  = 2

	rliFlagBloom = 1
)

// t_rlipartition columns: rli_id, pattern.
const (
	colPartRLI     = 0
	colPartPattern = 1
)

// attrValueTables lists the typed attribute value tables.
var attrValueTables = []string{tStrAttr, tIntAttr, tFltAttr, tDateAttr}

func nameTableSchema(name string) storage.Schema {
	return storage.Schema{
		Name: name,
		Columns: []storage.Column{
			{Name: "id", Kind: storage.KindInt},
			{Name: "name", Kind: storage.KindString},
			{Name: "ref", Kind: storage.KindInt},
		},
		Indexes: []storage.IndexSpec{
			{Name: "by_id", Columns: []string{"id"}, Unique: true},
			{Name: "by_name", Columns: []string{"name"}, Unique: true},
		},
	}
}

func attrValueSchema(name string, kind storage.Kind) storage.Schema {
	return storage.Schema{
		Name: name,
		Columns: []storage.Column{
			{Name: "obj_id", Kind: storage.KindInt},
			{Name: "attr_id", Kind: storage.KindInt},
			{Name: "value", Kind: kind},
		},
		Indexes: []storage.IndexSpec{
			{Name: "by_obj_attr", Columns: []string{"obj_id", "attr_id"}, Unique: true},
			{Name: "by_attr", Columns: []string{"attr_id"}},
		},
	}
}

// lrcSchemas lists every LRC table.
func lrcSchemas() []storage.Schema {
	return []storage.Schema{
		nameTableSchema(tLFN),
		nameTableSchema(tPFN),
		{
			Name: tMap,
			Columns: []storage.Column{
				{Name: "lfn_id", Kind: storage.KindInt},
				{Name: "pfn_id", Kind: storage.KindInt},
			},
			Indexes: []storage.IndexSpec{
				{Name: "by_pair", Columns: []string{"lfn_id", "pfn_id"}, Unique: true},
				{Name: "by_lfn", Columns: []string{"lfn_id"}},
				{Name: "by_pfn", Columns: []string{"pfn_id"}},
			},
		},
		{
			Name: tAttribute,
			Columns: []storage.Column{
				{Name: "id", Kind: storage.KindInt},
				{Name: "name", Kind: storage.KindString},
				{Name: "objtype", Kind: storage.KindInt},
				{Name: "type", Kind: storage.KindInt},
			},
			Indexes: []storage.IndexSpec{
				{Name: "by_id", Columns: []string{"id"}, Unique: true},
				{Name: "by_name_obj", Columns: []string{"name", "objtype"}, Unique: true},
			},
		},
		attrValueSchema(tStrAttr, storage.KindString),
		attrValueSchema(tIntAttr, storage.KindInt),
		attrValueSchema(tFltAttr, storage.KindFloat),
		attrValueSchema(tDateAttr, storage.KindTime),
		{
			Name: tRLI,
			Columns: []storage.Column{
				{Name: "id", Kind: storage.KindInt},
				{Name: "flags", Kind: storage.KindInt},
				{Name: "name", Kind: storage.KindString},
			},
			Indexes: []storage.IndexSpec{
				{Name: "by_id", Columns: []string{"id"}, Unique: true},
				{Name: "by_name", Columns: []string{"name"}, Unique: true},
			},
		},
		{
			Name: tRLIPartition,
			Columns: []storage.Column{
				{Name: "rli_id", Kind: storage.KindInt},
				{Name: "pattern", Kind: storage.KindString},
			},
			Indexes: []storage.IndexSpec{
				{Name: "by_pair", Columns: []string{"rli_id", "pattern"}, Unique: true},
				{Name: "by_rli", Columns: []string{"rli_id"}},
			},
		},
	}
}

// LRCDB is a Local Replica Catalog database.
type LRCDB struct {
	eng *storage.Engine

	nextLFN  atomic.Int64
	nextPFN  atomic.Int64
	nextAttr atomic.Int64
	nextRLI  atomic.Int64
}

// NewLRCDB creates the LRC tables on the engine (which must be empty of
// them) and returns the catalog handle.
func NewLRCDB(eng *storage.Engine) (*LRCDB, error) {
	for _, s := range lrcSchemas() {
		if err := eng.CreateTable(s); err != nil {
			return nil, err
		}
	}
	return &LRCDB{eng: eng}, nil
}

// OpenLRCDB attaches to an engine whose LRC tables already exist (reopened
// persistent databases), recovering the id counters.
func OpenLRCDB(eng *storage.Engine) (*LRCDB, error) {
	db := &LRCDB{eng: eng}
	err := eng.SnapshotView(func(r *storage.Reader) error {
		for _, rec := range []struct {
			table string
			ctr   *atomic.Int64
		}{{tLFN, &db.nextLFN}, {tPFN, &db.nextPFN}, {tAttribute, &db.nextAttr}, {tRLI, &db.nextRLI}} {
			maxID := int64(0)
			if err := r.ScanPrefix(rec.table, "by_id", nil, func(_ int64, row storage.Row) bool {
				maxID = row[0].Int
				return true
			}); err != nil {
				return err
			}
			rec.ctr.Store(maxID)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// Engine exposes the backing engine (vacuum, stats).
func (db *LRCDB) Engine() *storage.Engine { return db.eng }

// getOrCreateName returns the id of the row in a name table (t_lfn or
// t_pfn), creating it with ref 0 when absent. Runs inside tx.
func (db *LRCDB) getOrCreateName(tx *storage.Tx, table string, ctr *atomic.Int64, name string) (id int64, created bool, err error) {
	rows, err := tx.Lookup(table, "by_name", storage.String(name))
	if err != nil {
		return 0, false, err
	}
	if len(rows) > 0 {
		return rows[0][colNameID].Int, false, nil
	}
	id = ctr.Add(1)
	if _, err := tx.Insert(table, storage.Row{storage.Int64(id), storage.String(name), storage.Int64(0)}); err != nil {
		return 0, false, err
	}
	return id, true, nil
}

// adjustRef updates the ref column of a name-table row by delta, returning
// the new count. The update is a delete+insert pair, which under the
// postgres personality leaves a dead version behind — exactly what an SQL
// UPDATE does there.
func (db *LRCDB) adjustRef(tx *storage.Tx, table string, id, delta int64) (int64, error) {
	rowids, rows, err := tx.LookupIDs(table, "by_id", storage.Int64(id))
	if err != nil {
		return 0, err
	}
	if len(rows) == 0 {
		return 0, fmt.Errorf("%w: %s id %d", ErrNotFound, table, id)
	}
	newRef := rows[0][colNameRef].Int + delta
	if _, err := tx.Delete(table, rowids[0]); err != nil {
		return 0, err
	}
	updated := rows[0].Clone()
	updated[colNameRef] = storage.Int64(newRef)
	if _, err := tx.Insert(table, updated); err != nil {
		return 0, err
	}
	return newRef, nil
}

// deleteNameRow removes a name-table row and any attribute values attached
// to the object.
func (db *LRCDB) deleteNameRow(tx *storage.Tx, table string, id int64) error {
	rowids, _, err := tx.LookupIDs(table, "by_id", storage.Int64(id))
	if err != nil {
		return err
	}
	for _, rowid := range rowids {
		if _, err := tx.Delete(table, rowid); err != nil {
			return err
		}
	}
	for _, vt := range attrValueTables {
		var victims []int64
		if err := tx.ScanPrefix(vt, "by_obj_attr", []storage.Value{storage.Int64(id)}, func(rowid int64, _ storage.Row) bool {
			victims = append(victims, rowid)
			return true
		}); err != nil {
			return err
		}
		for _, rowid := range victims {
			if _, err := tx.Delete(vt, rowid); err != nil {
				return err
			}
		}
	}
	return nil
}

// CreateMapping registers a new logical name with its first target. It
// fails with ErrExists if the logical name is already registered (use
// AddMapping for additional targets).
func (db *LRCDB) CreateMapping(logical, target string) error {
	if logical == "" || target == "" {
		return fmt.Errorf("%w: empty name", ErrInvalid)
	}
	tx, err := db.eng.Begin(tLFN, tPFN, tMap)
	if err != nil {
		return err
	}
	defer tx.Rollback()
	if rows, err := tx.Lookup(tLFN, "by_name", storage.String(logical)); err != nil {
		return err
	} else if len(rows) > 0 {
		return fmt.Errorf("%w: logical name %q", ErrExists, logical)
	}
	lfnID := db.nextLFN.Add(1)
	if _, err := tx.Insert(tLFN, storage.Row{storage.Int64(lfnID), storage.String(logical), storage.Int64(1)}); err != nil {
		return err
	}
	pfnID, _, err := db.getOrCreateName(tx, tPFN, &db.nextPFN, target)
	if err != nil {
		return err
	}
	if _, err := tx.Insert(tMap, storage.Row{storage.Int64(lfnID), storage.Int64(pfnID)}); err != nil {
		return err
	}
	if _, err := db.adjustRef(tx, tPFN, pfnID, 1); err != nil {
		return err
	}
	return tx.Commit()
}

// AddMapping adds another target to an existing logical name. It fails with
// ErrNotFound if the logical name is unregistered and ErrExists if the
// mapping is already present.
func (db *LRCDB) AddMapping(logical, target string) error {
	if logical == "" || target == "" {
		return fmt.Errorf("%w: empty name", ErrInvalid)
	}
	tx, err := db.eng.Begin(tLFN, tPFN, tMap)
	if err != nil {
		return err
	}
	defer tx.Rollback()
	rows, err := tx.Lookup(tLFN, "by_name", storage.String(logical))
	if err != nil {
		return err
	}
	if len(rows) == 0 {
		return fmt.Errorf("%w: logical name %q", ErrNotFound, logical)
	}
	lfnID := rows[0][colNameID].Int
	pfnID, _, err := db.getOrCreateName(tx, tPFN, &db.nextPFN, target)
	if err != nil {
		return err
	}
	if rows, err := tx.Lookup(tMap, "by_pair", storage.Int64(lfnID), storage.Int64(pfnID)); err != nil {
		return err
	} else if len(rows) > 0 {
		return fmt.Errorf("%w: mapping %q -> %q", ErrExists, logical, target)
	}
	if _, err := tx.Insert(tMap, storage.Row{storage.Int64(lfnID), storage.Int64(pfnID)}); err != nil {
		return err
	}
	if _, err := db.adjustRef(tx, tLFN, lfnID, 1); err != nil {
		return err
	}
	if _, err := db.adjustRef(tx, tPFN, pfnID, 1); err != nil {
		return err
	}
	return tx.Commit()
}

// DeleteMapping removes one mapping. Logical and target rows whose last
// mapping disappears are deleted along with their attribute values.
func (db *LRCDB) DeleteMapping(logical, target string) error {
	// deleteNameRow may cascade into the attribute value tables, so they are
	// declared up front alongside the name and mapping tables.
	tables := append([]string{tLFN, tPFN, tMap}, attrValueTables...)
	tx, err := db.eng.Begin(tables...)
	if err != nil {
		return err
	}
	defer tx.Rollback()
	lfnRows, err := tx.Lookup(tLFN, "by_name", storage.String(logical))
	if err != nil {
		return err
	}
	pfnRows, err := tx.Lookup(tPFN, "by_name", storage.String(target))
	if err != nil {
		return err
	}
	if len(lfnRows) == 0 || len(pfnRows) == 0 {
		return fmt.Errorf("%w: mapping %q -> %q", ErrNotFound, logical, target)
	}
	lfnID, pfnID := lfnRows[0][colNameID].Int, pfnRows[0][colNameID].Int
	mapIDs, _, err := tx.LookupIDs(tMap, "by_pair", storage.Int64(lfnID), storage.Int64(pfnID))
	if err != nil {
		return err
	}
	if len(mapIDs) == 0 {
		return fmt.Errorf("%w: mapping %q -> %q", ErrNotFound, logical, target)
	}
	if _, err := tx.Delete(tMap, mapIDs[0]); err != nil {
		return err
	}
	newRef, err := db.adjustRef(tx, tLFN, lfnID, -1)
	if err != nil {
		return err
	}
	if newRef <= 0 {
		if err := db.deleteNameRow(tx, tLFN, lfnID); err != nil {
			return err
		}
	}
	newRef, err = db.adjustRef(tx, tPFN, pfnID, -1)
	if err != nil {
		return err
	}
	if newRef <= 0 {
		if err := db.deleteNameRow(tx, tPFN, pfnID); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// GetTargets returns the target names mapped from a logical name. It reads a
// snapshot — the latch-free fig5/fig7 query path — so concurrent writers
// never block it.
func (db *LRCDB) GetTargets(logical string) ([]string, error) {
	var out []string
	err := db.eng.SnapshotView(func(r *storage.Reader) error {
		rows, err := r.Lookup(tLFN, "by_name", storage.String(logical))
		if err != nil {
			return err
		}
		if len(rows) == 0 {
			return fmt.Errorf("%w: logical name %q", ErrNotFound, logical)
		}
		lfnID := rows[0][colNameID].Int
		maps, err := r.Lookup(tMap, "by_lfn", storage.Int64(lfnID))
		if err != nil {
			return err
		}
		for _, m := range maps {
			pfns, err := r.Lookup(tPFN, "by_id", m[colMapPFN])
			if err != nil {
				return err
			}
			if len(pfns) > 0 {
				out = append(out, pfns[0][colNameName].Str)
			}
		}
		return nil
	})
	return out, err
}

// GetLogicals returns the logical names mapping to a target name, from a
// snapshot.
func (db *LRCDB) GetLogicals(target string) ([]string, error) {
	var out []string
	err := db.eng.SnapshotView(func(r *storage.Reader) error {
		rows, err := r.Lookup(tPFN, "by_name", storage.String(target))
		if err != nil {
			return err
		}
		if len(rows) == 0 {
			return fmt.Errorf("%w: target name %q", ErrNotFound, target)
		}
		pfnID := rows[0][colNameID].Int
		maps, err := r.Lookup(tMap, "by_pfn", storage.Int64(pfnID))
		if err != nil {
			return err
		}
		for _, m := range maps {
			lfns, err := r.Lookup(tLFN, "by_id", m[colMapLFN])
			if err != nil {
				return err
			}
			if len(lfns) > 0 {
				out = append(out, lfns[0][colNameName].Str)
			}
		}
		return nil
	})
	return out, err
}

// WildcardTargets returns every (logical, target) pair whose logical name
// matches the wildcard pattern.
func (db *LRCDB) WildcardTargets(pattern string) ([]wire.Mapping, error) {
	return db.wildcard(pattern, tLFN, tMap, "by_lfn", colMapPFN, tPFN, false)
}

// WildcardLogicals returns every (logical, target) pair whose target name
// matches the wildcard pattern.
func (db *LRCDB) WildcardLogicals(pattern string) ([]wire.Mapping, error) {
	return db.wildcard(pattern, tPFN, tMap, "by_pfn", colMapLFN, tLFN, true)
}

func (db *LRCDB) wildcard(pattern, nameTable, mapTable, mapIndex string, otherCol int, otherTable string, swap bool) ([]wire.Mapping, error) {
	prefix, _ := glob.LiteralPrefix(pattern)
	var out []wire.Mapping
	err := db.eng.SnapshotView(func(r *storage.Reader) error {
		var scanErr error
		if err := r.ScanStringPrefix(nameTable, "by_name", prefix, func(_ int64, row storage.Row) bool {
			name := row[colNameName].Str
			if !glob.Match(pattern, name) {
				return true
			}
			id := row[colNameID].Int
			maps, err := r.Lookup(mapTable, mapIndex, storage.Int64(id))
			if err != nil {
				scanErr = err
				return false
			}
			for _, m := range maps {
				others, err := r.Lookup(otherTable, "by_id", m[otherCol])
				if err != nil {
					scanErr = err
					return false
				}
				if len(others) == 0 {
					continue
				}
				other := others[0][colNameName].Str
				if swap {
					out = append(out, wire.Mapping{Logical: other, Target: name})
				} else {
					out = append(out, wire.Mapping{Logical: name, Target: other})
				}
			}
			return true
		}); err != nil {
			return err
		}
		return scanErr
	})
	return out, err
}

// PageLogicalNames returns up to limit logical names strictly greater than
// after, in lexical order. Each call pins a fresh snapshot, so names inserted
// or removed between pages may or may not appear; enumerations that need one
// consistent universe use a NamesCursor instead.
func (db *LRCDB) PageLogicalNames(after string, limit int) ([]string, error) {
	if limit <= 0 {
		return nil, fmt.Errorf("%w: non-positive page limit", ErrInvalid)
	}
	var out []string
	err := db.eng.SnapshotView(func(r *storage.Reader) error {
		return r.ScanStringAfter(tLFN, "by_name", after, func(_ int64, row storage.Row) bool {
			out = append(out, row[colNameName].Str)
			return len(out) < limit
		})
	})
	return out, err
}

// NamesCursor pages through the logical-name universe of one pinned engine
// snapshot: every page comes from the same committed version, so a full
// enumeration (soft-state full update, Bloom rebuild, partition bitmap) is
// internally consistent no matter how many writes land mid-stream — and it
// holds no latch, so those writes never wait on it. Close releases the pin.
type NamesCursor struct {
	snap  *storage.Snap
	after string
	done  bool
}

// OpenNamesCursor pins the last committed version and returns a cursor over
// its logical names. The caller must Close it.
func (db *LRCDB) OpenNamesCursor() (*NamesCursor, error) {
	snap, err := db.eng.Snapshot()
	if err != nil {
		return nil, err
	}
	return &NamesCursor{snap: snap}, nil
}

// Count returns the number of logical names in the cursor's snapshot — by
// construction, exactly the number of names a full enumeration will yield.
func (c *NamesCursor) Count() (int64, error) {
	return c.snap.Count(tLFN)
}

// Next returns the next page of up to limit names, in lexical order. It
// returns an empty page when the enumeration is exhausted.
func (c *NamesCursor) Next(limit int) ([]string, error) {
	if limit <= 0 {
		return nil, fmt.Errorf("%w: non-positive page limit", ErrInvalid)
	}
	if c.done {
		return nil, nil
	}
	var out []string
	err := c.snap.ScanStringAfter(tLFN, "by_name", c.after, func(_ int64, row storage.Row) bool {
		out = append(out, row[colNameName].Str)
		return len(out) < limit
	})
	if err != nil {
		return nil, err
	}
	if len(out) > 0 {
		c.after = out[len(out)-1]
	}
	if len(out) < limit {
		c.done = true
	}
	return out, nil
}

// Close unpins the cursor's snapshot. Safe to call more than once.
func (c *NamesCursor) Close() {
	c.snap.Close()
}

// Counts reports catalog occupancy: logical names, target names, mappings,
// all from one snapshot.
func (db *LRCDB) Counts() (logicals, targets, mappings int64, err error) {
	err = db.eng.SnapshotView(func(r *storage.Reader) error {
		if logicals, err = r.Count(tLFN); err != nil {
			return err
		}
		if targets, err = r.Count(tPFN); err != nil {
			return err
		}
		mappings, err = r.Count(tMap)
		return err
	})
	return logicals, targets, mappings, err
}
