package rdb

import (
	"fmt"

	"repro/internal/storage"
	"repro/internal/wire"
)

// AddRLITarget records that this LRC updates the given RLI, with the update
// flavour and optional namespace-partition patterns (t_rli plus one
// t_rlipartition row per pattern).
func (db *LRCDB) AddRLITarget(t wire.RLITarget) error {
	if t.URL == "" {
		return fmt.Errorf("%w: empty RLI url", ErrInvalid)
	}
	tx, err := db.eng.Begin(tRLI, tRLIPartition)
	if err != nil {
		return err
	}
	defer tx.Rollback()
	if rows, err := tx.Lookup(tRLI, "by_name", storage.String(t.URL)); err != nil {
		return err
	} else if len(rows) > 0 {
		return fmt.Errorf("%w: RLI %q", ErrExists, t.URL)
	}
	id := db.nextRLI.Add(1)
	flags := int64(0)
	if t.Bloom {
		flags |= rliFlagBloom
	}
	if _, err := tx.Insert(tRLI, storage.Row{storage.Int64(id), storage.Int64(flags), storage.String(t.URL)}); err != nil {
		return err
	}
	for _, p := range t.Patterns {
		if p == "" {
			return fmt.Errorf("%w: empty partition pattern", ErrInvalid)
		}
		if _, err := tx.Insert(tRLIPartition, storage.Row{storage.Int64(id), storage.String(p)}); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// RemoveRLITarget stops updating the given RLI and drops its partition
// patterns.
func (db *LRCDB) RemoveRLITarget(url string) error {
	tx, err := db.eng.Begin(tRLI, tRLIPartition)
	if err != nil {
		return err
	}
	defer tx.Rollback()
	rowids, rows, err := tx.LookupIDs(tRLI, "by_name", storage.String(url))
	if err != nil {
		return err
	}
	if len(rowids) == 0 {
		return fmt.Errorf("%w: RLI %q", ErrNotFound, url)
	}
	id := rows[0][colRLIID].Int
	if _, err := tx.Delete(tRLI, rowids[0]); err != nil {
		return err
	}
	var parts []int64
	if err := tx.ScanPrefix(tRLIPartition, "by_rli", []storage.Value{storage.Int64(id)}, func(rowid int64, _ storage.Row) bool {
		parts = append(parts, rowid)
		return true
	}); err != nil {
		return err
	}
	for _, rowid := range parts {
		if _, err := tx.Delete(tRLIPartition, rowid); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// ListRLITargets returns the RLIs this LRC updates.
func (db *LRCDB) ListRLITargets() ([]wire.RLITarget, error) {
	var out []wire.RLITarget
	err := db.eng.SnapshotView(func(r *storage.Reader) error {
		var scanErr error
		if err := r.ScanStringPrefix(tRLI, "by_name", "", func(_ int64, row storage.Row) bool {
			t := wire.RLITarget{
				URL:   row[colRLIName].Str,
				Bloom: row[colRLIFlags].Int&rliFlagBloom != 0,
			}
			scanErr = r.ScanPrefix(tRLIPartition, "by_rli", []storage.Value{row[colRLIID]}, func(_ int64, prow storage.Row) bool {
				t.Patterns = append(t.Patterns, prow[colPartPattern].Str)
				return true
			})
			out = append(out, t)
			return scanErr == nil
		}); err != nil {
			return err
		}
		return scanErr
	})
	return out, err
}
