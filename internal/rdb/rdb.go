// Package rdb implements the relational schemas of the paper's Figure 3 and
// the multi-statement database operations the RLS server performs against
// them — the layer that, in the C implementation, was SQL issued through
// ODBC to MySQL or PostgreSQL.
//
// Two database types exist:
//
//   - LRCDB holds a Local Replica Catalog: t_lfn, t_pfn and t_map for the
//     logical-to-target mappings; t_attribute plus one typed value table per
//     attribute type (t_str_attr, t_int_attr, t_flt_attr, t_date_attr); and
//     t_rli / t_rlipartition recording which RLIs this LRC updates and any
//     namespace-partition patterns.
//
//   - RLIDB holds a Replica Location Index built from full or incremental
//     (non-Bloom) soft state updates: t_lfn, t_lrc and a t_map whose rows
//     carry the updatetime examined by the expiration thread. (RLIs that
//     receive Bloom filter updates store no database at all; see package
//     rli.)
//
// Every public operation runs as one storage transaction, mirroring the
// paper's observation that "each of these operations may correspond to
// multiple SQL operations on database tables".
package rdb

import "errors"

// Sentinel errors mapped onto wire statuses by the server layer.
var (
	// ErrExists reports a create of something already registered.
	ErrExists = errors.New("rdb: already exists")
	// ErrNotFound reports an operation on an unregistered name.
	ErrNotFound = errors.New("rdb: not found")
	// ErrInvalid reports malformed arguments (empty names, bad types).
	ErrInvalid = errors.New("rdb: invalid argument")
)
