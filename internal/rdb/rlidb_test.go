package rdb

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/disk"
	"repro/internal/storage"
)

func newTestRLI(t *testing.T) *RLIDB {
	t.Helper()
	eng := storage.OpenMemory(storage.Options{Device: disk.New(disk.Fast())})
	t.Cleanup(func() { eng.Close() })
	db, err := NewRLIDB(eng)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestUpsertAndQuery(t *testing.T) {
	db := newTestRLI(t)
	now := time.Now()
	if err := db.UpsertNames("rls://lrc1", []string{"lfn://a", "lfn://b"}, now); err != nil {
		t.Fatal(err)
	}
	if err := db.UpsertNames("rls://lrc2", []string{"lfn://a"}, now); err != nil {
		t.Fatal(err)
	}
	lrcs, err := db.QueryLRCs("lfn://a")
	if err != nil {
		t.Fatal(err)
	}
	if len(lrcs) != 2 {
		t.Fatalf("lfn://a LRCs = %v, want 2", lrcs)
	}
	lrcs, err = db.QueryLRCs("lfn://b")
	if err != nil {
		t.Fatal(err)
	}
	if len(lrcs) != 1 || lrcs[0] != "rls://lrc1" {
		t.Fatalf("lfn://b LRCs = %v", lrcs)
	}
	if _, err := db.QueryLRCs("lfn://missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing lfn = %v, want ErrNotFound", err)
	}
}

func TestUpsertRefreshesTimestampNotDuplicates(t *testing.T) {
	db := newTestRLI(t)
	t0 := time.Now()
	db.UpsertNames("rls://lrc1", []string{"lfn://a"}, t0)
	db.UpsertNames("rls://lrc1", []string{"lfn://a"}, t0.Add(time.Hour))
	_, _, assoc, err := db.Counts()
	if err != nil {
		t.Fatal(err)
	}
	if assoc != 1 {
		t.Fatalf("associations = %d after re-upsert, want 1", assoc)
	}
	// Expiring before the refreshed time must keep the association.
	n, err := db.ExpireBefore(t0.Add(30 * time.Minute))
	if err != nil || n != 0 {
		t.Fatalf("ExpireBefore = %d, %v; want 0", n, err)
	}
}

func TestRemoveNames(t *testing.T) {
	db := newTestRLI(t)
	now := time.Now()
	db.UpsertNames("rls://lrc1", []string{"lfn://a", "lfn://b"}, now)
	db.UpsertNames("rls://lrc2", []string{"lfn://a"}, now)
	if err := db.RemoveNames("rls://lrc1", []string{"lfn://a", "lfn://nonexistent"}); err != nil {
		t.Fatal(err)
	}
	lrcs, err := db.QueryLRCs("lfn://a")
	if err != nil {
		t.Fatal(err)
	}
	if len(lrcs) != 1 || lrcs[0] != "rls://lrc2" {
		t.Fatalf("lfn://a LRCs = %v", lrcs)
	}
	// Removing from an unknown LRC is a no-op.
	if err := db.RemoveNames("rls://unknown", []string{"lfn://a"}); err != nil {
		t.Fatal(err)
	}
	// Removing the last association deletes the lfn row.
	db.RemoveNames("rls://lrc2", []string{"lfn://a"})
	if _, err := db.QueryLRCs("lfn://a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("fully removed lfn still resolvable: %v", err)
	}
	logicals, _, _, _ := db.Counts()
	if logicals != 1 { // only lfn://b remains
		t.Fatalf("logicals = %d, want 1", logicals)
	}
}

func TestExpiration(t *testing.T) {
	db := newTestRLI(t)
	t0 := time.Now()
	db.UpsertNames("rls://lrc1", []string{"lfn://old1", "lfn://old2"}, t0)
	db.UpsertNames("rls://lrc2", []string{"lfn://old1"}, t0)
	db.UpsertNames("rls://lrc1", []string{"lfn://fresh"}, t0.Add(time.Hour))

	n, err := db.ExpireBefore(t0.Add(30 * time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("expired %d associations, want 3", n)
	}
	if _, err := db.QueryLRCs("lfn://old1"); !errors.Is(err, ErrNotFound) {
		t.Fatal("expired lfn still resolvable")
	}
	lrcs, err := db.QueryLRCs("lfn://fresh")
	if err != nil || len(lrcs) != 1 {
		t.Fatalf("fresh lfn = %v, %v", lrcs, err)
	}
	// Idempotent.
	n, err = db.ExpireBefore(t0.Add(30 * time.Minute))
	if err != nil || n != 0 {
		t.Fatalf("second expire = %d, %v", n, err)
	}
}

func TestExpirationRefreshKeepsEntry(t *testing.T) {
	// The soft-state contract: an entry refreshed by a later update
	// survives expiration of its original timestamp.
	db := newTestRLI(t)
	t0 := time.Now()
	db.UpsertNames("rls://lrc1", []string{"lfn://a"}, t0)
	db.UpsertNames("rls://lrc1", []string{"lfn://a"}, t0.Add(2*time.Hour))
	n, err := db.ExpireBefore(t0.Add(time.Hour))
	if err != nil || n != 0 {
		t.Fatalf("expire = %d, %v; want 0 (entry was refreshed)", n, err)
	}
}

func TestWildcardQueryRLI(t *testing.T) {
	db := newTestRLI(t)
	now := time.Now()
	db.UpsertNames("rls://lrc1", []string{"lfn://ligo/run1", "lfn://ligo/run2", "lfn://esg/x"}, now)
	hits, err := db.WildcardQuery("lfn://ligo/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("wildcard hits = %v", hits)
	}
	for _, h := range hits {
		if h.Target != "rls://lrc1" {
			t.Fatalf("hit target = %q", h.Target)
		}
	}
}

func TestLRCList(t *testing.T) {
	db := newTestRLI(t)
	now := time.Now()
	db.UpsertNames("rls://lrc2", []string{"lfn://a"}, now)
	db.UpsertNames("rls://lrc1", []string{"lfn://b"}, now)
	lrcs, err := db.LRCs()
	if err != nil {
		t.Fatal(err)
	}
	if len(lrcs) != 2 || lrcs[0] != "rls://lrc1" || lrcs[1] != "rls://lrc2" {
		t.Fatalf("LRCs = %v, want sorted pair", lrcs)
	}
}

func TestUpsertValidation(t *testing.T) {
	db := newTestRLI(t)
	if err := db.UpsertNames("", []string{"x"}, time.Now()); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty LRC url = %v", err)
	}
	// Empty names are skipped, not errors (defensive against sparse
	// batches).
	if err := db.UpsertNames("rls://lrc1", []string{"", "lfn://ok"}, time.Now()); err != nil {
		t.Fatal(err)
	}
	logicals, _, _, _ := db.Counts()
	if logicals != 1 {
		t.Fatalf("logicals = %d, want 1", logicals)
	}
}

func TestOpenRLIDBRecoversCounters(t *testing.T) {
	dir := t.TempDir()
	eng, err := storage.Open(dir, storage.Options{Device: disk.New(disk.Fast())})
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewRLIDB(eng)
	if err != nil {
		t.Fatal(err)
	}
	db.UpsertNames("rls://lrc1", []string{"lfn://a", "lfn://b"}, time.Now())
	eng.Close()

	eng2, err := storage.Open(dir, storage.Options{Device: disk.New(disk.Fast())})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	db2, err := OpenRLIDB(eng2)
	if err != nil {
		t.Fatal(err)
	}
	if err := db2.UpsertNames("rls://lrc1", []string{"lfn://c"}, time.Now()); err != nil {
		t.Fatal(err)
	}
	logicals, lrcs, assoc, _ := db2.Counts()
	if logicals != 3 || lrcs != 1 || assoc != 3 {
		t.Fatalf("counts = %d/%d/%d, want 3/1/3", logicals, lrcs, assoc)
	}
}

func TestLargeBatchUpsert(t *testing.T) {
	db := newTestRLI(t)
	names := make([]string, 5000)
	for i := range names {
		names[i] = fmt.Sprintf("lfn://bulk/%06d", i)
	}
	if err := db.UpsertNames("rls://lrc1", names, time.Now()); err != nil {
		t.Fatal(err)
	}
	logicals, _, assoc, _ := db.Counts()
	if logicals != 5000 || assoc != 5000 {
		t.Fatalf("counts = %d logicals, %d assoc", logicals, assoc)
	}
}
