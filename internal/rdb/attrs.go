package rdb

import (
	"fmt"
	"time"

	"repro/internal/storage"
	"repro/internal/wire"
)

// attrValueTable maps an attribute type to its typed value table.
func attrValueTable(t wire.AttrType) (string, error) {
	switch t {
	case wire.AttrString:
		return tStrAttr, nil
	case wire.AttrInt:
		return tIntAttr, nil
	case wire.AttrFloat:
		return tFltAttr, nil
	case wire.AttrDate:
		return tDateAttr, nil
	default:
		return "", fmt.Errorf("%w: attribute type %d", ErrInvalid, t)
	}
}

// objNameTable maps an object type to the name table its keys live in.
func objNameTable(o wire.ObjType) (string, error) {
	switch o {
	case wire.ObjLogical:
		return tLFN, nil
	case wire.ObjTarget:
		return tPFN, nil
	default:
		return "", fmt.Errorf("%w: object type %d", ErrInvalid, o)
	}
}

// toStorageValue converts a wire attribute value into the storage value for
// its typed table.
func toStorageValue(v wire.AttrValue) (storage.Value, error) {
	switch v.Type {
	case wire.AttrString:
		return storage.String(v.S), nil
	case wire.AttrInt:
		return storage.Int64(v.I), nil
	case wire.AttrFloat:
		return storage.Float64(v.F), nil
	case wire.AttrDate:
		return storage.Timestamp(time.Unix(0, v.I)), nil
	default:
		return storage.Null(), fmt.Errorf("%w: attribute type %d", ErrInvalid, v.Type)
	}
}

// fromStorageValue converts a typed-table value back to the wire form.
func fromStorageValue(t wire.AttrType, v storage.Value) wire.AttrValue {
	switch t {
	case wire.AttrString:
		return wire.AttrValue{Type: t, S: v.Str}
	case wire.AttrInt:
		return wire.AttrValue{Type: t, I: v.Int}
	case wire.AttrFloat:
		return wire.AttrValue{Type: t, F: v.Float}
	default: // AttrDate
		return wire.AttrValue{Type: t, I: v.Time.UnixNano()}
	}
}

// DefineAttribute declares a new attribute for an object type.
func (db *LRCDB) DefineAttribute(name string, obj wire.ObjType, typ wire.AttrType) error {
	if name == "" {
		return fmt.Errorf("%w: empty attribute name", ErrInvalid)
	}
	if !obj.Valid() {
		return fmt.Errorf("%w: object type %d", ErrInvalid, obj)
	}
	if !typ.Valid() {
		return fmt.Errorf("%w: attribute type %d", ErrInvalid, typ)
	}
	tx, err := db.eng.Begin(tAttribute)
	if err != nil {
		return err
	}
	defer tx.Rollback()
	if rows, err := tx.Lookup(tAttribute, "by_name_obj", storage.String(name), storage.Int64(int64(obj))); err != nil {
		return err
	} else if len(rows) > 0 {
		return fmt.Errorf("%w: attribute %q for %s objects", ErrExists, name, obj)
	}
	id := db.nextAttr.Add(1)
	row := storage.Row{storage.Int64(id), storage.String(name), storage.Int64(int64(obj)), storage.Int64(int64(typ))}
	if _, err := tx.Insert(tAttribute, row); err != nil {
		return err
	}
	return tx.Commit()
}

// lookupAttrDef finds an attribute definition, returning its id and type.
func lookupAttrDef(lk interface {
	Lookup(string, string, ...storage.Value) ([]storage.Row, error)
}, name string, obj wire.ObjType) (int64, wire.AttrType, error) {
	rows, err := lk.Lookup(tAttribute, "by_name_obj", storage.String(name), storage.Int64(int64(obj)))
	if err != nil {
		return 0, 0, err
	}
	if len(rows) == 0 {
		return 0, 0, fmt.Errorf("%w: attribute %q for %s objects", ErrNotFound, name, obj)
	}
	return rows[0][colAttrID].Int, wire.AttrType(rows[0][colAttrValType].Int), nil
}

// UndefineAttribute removes an attribute definition. With clearValues, all
// stored values of the attribute are removed too; otherwise the operation
// fails with ErrExists while values remain.
func (db *LRCDB) UndefineAttribute(name string, obj wire.ObjType, clearValues bool) error {
	// The typed value table is only known once the definition is read inside
	// the transaction, so declare all of them up front.
	tx, err := db.eng.Begin(append([]string{tAttribute}, attrValueTables...)...)
	if err != nil {
		return err
	}
	defer tx.Rollback()
	attrID, typ, err := lookupAttrDef(tx, name, obj)
	if err != nil {
		return err
	}
	vt, err := attrValueTable(typ)
	if err != nil {
		return err
	}
	var valueRows []int64
	if err := tx.ScanPrefix(vt, "by_attr", []storage.Value{storage.Int64(attrID)}, func(rowid int64, _ storage.Row) bool {
		valueRows = append(valueRows, rowid)
		return true
	}); err != nil {
		return err
	}
	if len(valueRows) > 0 && !clearValues {
		return fmt.Errorf("%w: attribute %q still has %d values", ErrExists, name, len(valueRows))
	}
	for _, rowid := range valueRows {
		if _, err := tx.Delete(vt, rowid); err != nil {
			return err
		}
	}
	defIDs, _, err := tx.LookupIDs(tAttribute, "by_name_obj", storage.String(name), storage.Int64(int64(obj)))
	if err != nil {
		return err
	}
	for _, rowid := range defIDs {
		if _, err := tx.Delete(tAttribute, rowid); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// resolveObjectID finds the id of the named object in the proper name table.
func resolveObjectID(tx *storage.Tx, obj wire.ObjType, key string) (int64, error) {
	table, err := objNameTable(obj)
	if err != nil {
		return 0, err
	}
	rows, err := tx.Lookup(table, "by_name", storage.String(key))
	if err != nil {
		return 0, err
	}
	if len(rows) == 0 {
		return 0, fmt.Errorf("%w: %s name %q", ErrNotFound, obj, key)
	}
	return rows[0][colNameID].Int, nil
}

// AddAttribute attaches an attribute value to an object. The attribute must
// be defined, the declared type must match the supplied value, and the
// object must not already carry the attribute.
func (db *LRCDB) AddAttribute(key string, obj wire.ObjType, name string, value wire.AttrValue) error {
	return db.writeAttribute(key, obj, name, value, false)
}

// ModifyAttribute replaces the stored value of an attribute on an object.
func (db *LRCDB) ModifyAttribute(key string, obj wire.ObjType, name string, value wire.AttrValue) error {
	return db.writeAttribute(key, obj, name, value, true)
}

func (db *LRCDB) writeAttribute(key string, obj wire.ObjType, name string, value wire.AttrValue, replace bool) error {
	objTable, err := objNameTable(obj)
	if err != nil {
		return err
	}
	// The value's own type picks the one typed table the transaction can
	// touch; the definition check below rejects the write before the table
	// is used if the declared attribute type differs.
	vt, err := attrValueTable(value.Type)
	if err != nil {
		return err
	}
	tx, err := db.eng.Begin(tAttribute, objTable, vt)
	if err != nil {
		return err
	}
	defer tx.Rollback()
	attrID, typ, err := lookupAttrDef(tx, name, obj)
	if err != nil {
		return err
	}
	if typ != value.Type {
		return fmt.Errorf("%w: attribute %q is %s, value is %s", ErrInvalid, name, typ, value.Type)
	}
	objID, err := resolveObjectID(tx, obj, key)
	if err != nil {
		return err
	}
	existing, _, err := tx.LookupIDs(vt, "by_obj_attr", storage.Int64(objID), storage.Int64(attrID))
	if err != nil {
		return err
	}
	if len(existing) > 0 {
		if !replace {
			return fmt.Errorf("%w: attribute %q on %q", ErrExists, name, key)
		}
		for _, rowid := range existing {
			if _, err := tx.Delete(vt, rowid); err != nil {
				return err
			}
		}
	} else if replace {
		return fmt.Errorf("%w: attribute %q on %q", ErrNotFound, name, key)
	}
	sv, err := toStorageValue(value)
	if err != nil {
		return err
	}
	if _, err := tx.Insert(vt, storage.Row{storage.Int64(objID), storage.Int64(attrID), sv}); err != nil {
		return err
	}
	return tx.Commit()
}

// RemoveAttribute detaches an attribute value from an object.
func (db *LRCDB) RemoveAttribute(key string, obj wire.ObjType, name string) error {
	objTable, err := objNameTable(obj)
	if err != nil {
		return err
	}
	// The typed value table is only known once the definition is read inside
	// the transaction, so declare all of them up front.
	tx, err := db.eng.Begin(append([]string{tAttribute, objTable}, attrValueTables...)...)
	if err != nil {
		return err
	}
	defer tx.Rollback()
	attrID, typ, err := lookupAttrDef(tx, name, obj)
	if err != nil {
		return err
	}
	objID, err := resolveObjectID(tx, obj, key)
	if err != nil {
		return err
	}
	vt, err := attrValueTable(typ)
	if err != nil {
		return err
	}
	rowids, _, err := tx.LookupIDs(vt, "by_obj_attr", storage.Int64(objID), storage.Int64(attrID))
	if err != nil {
		return err
	}
	if len(rowids) == 0 {
		return fmt.Errorf("%w: attribute %q on %q", ErrNotFound, name, key)
	}
	for _, rowid := range rowids {
		if _, err := tx.Delete(vt, rowid); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// GetAttributes returns the attribute values attached to an object,
// restricted to names when non-empty.
func (db *LRCDB) GetAttributes(key string, obj wire.ObjType, names []string) ([]wire.NamedAttr, error) {
	table, err := objNameTable(obj)
	if err != nil {
		return nil, err
	}
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []wire.NamedAttr
	err = db.eng.SnapshotView(func(r *storage.Reader) error {
		rows, err := r.Lookup(table, "by_name", storage.String(key))
		if err != nil {
			return err
		}
		if len(rows) == 0 {
			return fmt.Errorf("%w: %s name %q", ErrNotFound, obj, key)
		}
		objID := rows[0][colNameID].Int
		// Walk every typed value table; resolve each hit's definition to
		// recover name and confirm object type.
		for _, spec := range []struct {
			table string
			typ   wire.AttrType
		}{{tStrAttr, wire.AttrString}, {tIntAttr, wire.AttrInt}, {tFltAttr, wire.AttrFloat}, {tDateAttr, wire.AttrDate}} {
			var scanErr error
			err := r.ScanPrefix(spec.table, "by_obj_attr", []storage.Value{storage.Int64(objID)}, func(_ int64, vrow storage.Row) bool {
				defs, err := r.Lookup(tAttribute, "by_id", vrow[colValAttr])
				if err != nil {
					scanErr = err
					return false
				}
				if len(defs) == 0 || wire.ObjType(defs[0][colAttrObjType].Int) != obj {
					return true
				}
				aname := defs[0][colAttrName].Str
				if len(want) > 0 && !want[aname] {
					return true
				}
				out = append(out, wire.NamedAttr{Name: aname, Value: fromStorageValue(spec.typ, vrow[colValValue])})
				return true
			})
			if err != nil {
				return err
			}
			if scanErr != nil {
				return scanErr
			}
		}
		return nil
	})
	return out, err
}

// ListAttributeDefs returns the attribute definitions for an object type
// (or both when obj is 0), sorted by name.
func (db *LRCDB) ListAttributeDefs(obj wire.ObjType) ([]wire.AttrDef, error) {
	if obj != 0 && !obj.Valid() {
		return nil, fmt.Errorf("%w: object type %d", ErrInvalid, obj)
	}
	var out []wire.AttrDef
	err := db.eng.SnapshotView(func(r *storage.Reader) error {
		return r.ScanStringPrefix(tAttribute, "by_name_obj", "", func(_ int64, row storage.Row) bool {
			defObj := wire.ObjType(row[colAttrObjType].Int)
			if obj != 0 && defObj != obj {
				return true
			}
			out = append(out, wire.AttrDef{
				Name: row[colAttrName].Str,
				Obj:  defObj,
				Type: wire.AttrType(row[colAttrValType].Int),
			})
			return true
		})
	})
	return out, err
}

// compareAttr evaluates a comparison between a stored value and the probe.
func compareAttr(typ wire.AttrType, stored storage.Value, cmp wire.CmpOp, probe wire.AttrValue) bool {
	if cmp == wire.CmpAny {
		return true
	}
	var c int
	switch typ {
	case wire.AttrString:
		switch {
		case stored.Str < probe.S:
			c = -1
		case stored.Str > probe.S:
			c = 1
		}
	case wire.AttrInt:
		switch {
		case stored.Int < probe.I:
			c = -1
		case stored.Int > probe.I:
			c = 1
		}
	case wire.AttrFloat:
		switch {
		case stored.Float < probe.F:
			c = -1
		case stored.Float > probe.F:
			c = 1
		}
	case wire.AttrDate:
		pn := probe.I
		switch {
		case stored.Time.UnixNano() < pn:
			c = -1
		case stored.Time.UnixNano() > pn:
			c = 1
		}
	}
	switch cmp {
	case wire.CmpEQ:
		return c == 0
	case wire.CmpNE:
		return c != 0
	case wire.CmpLT:
		return c < 0
	case wire.CmpLE:
		return c <= 0
	case wire.CmpGT:
		return c > 0
	case wire.CmpGE:
		return c >= 0
	default:
		return false
	}
}

// SearchAttribute finds objects whose named attribute satisfies the
// comparison, returning object keys with the matching values.
func (db *LRCDB) SearchAttribute(name string, obj wire.ObjType, cmp wire.CmpOp, probe wire.AttrValue) ([]wire.ObjAttr, error) {
	if !cmp.Valid() {
		return nil, fmt.Errorf("%w: comparison operator %d", ErrInvalid, cmp)
	}
	table, err := objNameTable(obj)
	if err != nil {
		return nil, err
	}
	var out []wire.ObjAttr
	err = db.eng.SnapshotView(func(r *storage.Reader) error {
		rows, err := r.Lookup(tAttribute, "by_name_obj", storage.String(name), storage.Int64(int64(obj)))
		if err != nil {
			return err
		}
		if len(rows) == 0 {
			return fmt.Errorf("%w: attribute %q for %s objects", ErrNotFound, name, obj)
		}
		attrID := rows[0][colAttrID].Int
		typ := wire.AttrType(rows[0][colAttrValType].Int)
		if cmp != wire.CmpAny && typ != probe.Type {
			return fmt.Errorf("%w: attribute %q is %s, probe is %s", ErrInvalid, name, typ, probe.Type)
		}
		vt, err := attrValueTable(typ)
		if err != nil {
			return err
		}
		var scanErr error
		if err := r.ScanPrefix(vt, "by_attr", []storage.Value{storage.Int64(attrID)}, func(_ int64, vrow storage.Row) bool {
			if !compareAttr(typ, vrow[colValValue], cmp, probe) {
				return true
			}
			objs, err := r.Lookup(table, "by_id", vrow[colValObj])
			if err != nil {
				scanErr = err
				return false
			}
			if len(objs) > 0 {
				out = append(out, wire.ObjAttr{Key: objs[0][colNameName].Str, Value: fromStorageValue(typ, vrow[colValValue])})
			}
			return true
		}); err != nil {
			return err
		}
		return scanErr
	})
	return out, err
}
