package rdb

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/disk"
	"repro/internal/storage"
	"repro/internal/wire"
)

func newTestLRC(t *testing.T) *LRCDB {
	t.Helper()
	eng := storage.OpenMemory(storage.Options{Device: disk.New(disk.Fast())})
	t.Cleanup(func() { eng.Close() })
	db, err := NewLRCDB(eng)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCreateAndQueryMapping(t *testing.T) {
	db := newTestLRC(t)
	if err := db.CreateMapping("lfn://f1", "pfn://siteA/f1"); err != nil {
		t.Fatal(err)
	}
	targets, err := db.GetTargets("lfn://f1")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 1 || targets[0] != "pfn://siteA/f1" {
		t.Fatalf("targets = %v", targets)
	}
	logicals, err := db.GetLogicals("pfn://siteA/f1")
	if err != nil {
		t.Fatal(err)
	}
	if len(logicals) != 1 || logicals[0] != "lfn://f1" {
		t.Fatalf("logicals = %v", logicals)
	}
}

func TestCreateDuplicateLogicalFails(t *testing.T) {
	db := newTestLRC(t)
	db.CreateMapping("lfn://f1", "pfn://a")
	err := db.CreateMapping("lfn://f1", "pfn://b")
	if !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create = %v, want ErrExists", err)
	}
}

func TestAddMappingSemantics(t *testing.T) {
	db := newTestLRC(t)
	if err := db.AddMapping("lfn://missing", "pfn://a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("add to unregistered lfn = %v, want ErrNotFound", err)
	}
	db.CreateMapping("lfn://f1", "pfn://a")
	if err := db.AddMapping("lfn://f1", "pfn://b"); err != nil {
		t.Fatal(err)
	}
	if err := db.AddMapping("lfn://f1", "pfn://b"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate add = %v, want ErrExists", err)
	}
	targets, _ := db.GetTargets("lfn://f1")
	if len(targets) != 2 {
		t.Fatalf("targets = %v, want 2", targets)
	}
}

func TestSharedTargetAcrossLogicals(t *testing.T) {
	db := newTestLRC(t)
	db.CreateMapping("lfn://f1", "pfn://shared")
	db.CreateMapping("lfn://f2", "pfn://shared")
	logicals, err := db.GetLogicals("pfn://shared")
	if err != nil {
		t.Fatal(err)
	}
	if len(logicals) != 2 {
		t.Fatalf("logicals = %v, want 2", logicals)
	}
}

func TestDeleteMappingRemovesOrphans(t *testing.T) {
	db := newTestLRC(t)
	db.CreateMapping("lfn://f1", "pfn://a")
	db.AddMapping("lfn://f1", "pfn://b")
	if err := db.DeleteMapping("lfn://f1", "pfn://a"); err != nil {
		t.Fatal(err)
	}
	// pfn://a should be gone; lfn://f1 still has one mapping.
	if _, err := db.GetLogicals("pfn://a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("orphaned target still resolvable: %v", err)
	}
	targets, _ := db.GetTargets("lfn://f1")
	if len(targets) != 1 || targets[0] != "pfn://b" {
		t.Fatalf("targets = %v", targets)
	}
	if err := db.DeleteMapping("lfn://f1", "pfn://b"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.GetTargets("lfn://f1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("orphaned logical still resolvable: %v", err)
	}
	l, p, m, _ := db.Counts()
	if l != 0 || p != 0 || m != 0 {
		t.Fatalf("counts after full cleanup = %d/%d/%d", l, p, m)
	}
}

func TestDeleteMissingMapping(t *testing.T) {
	db := newTestLRC(t)
	db.CreateMapping("lfn://f1", "pfn://a")
	db.CreateMapping("lfn://f2", "pfn://b")
	if err := db.DeleteMapping("lfn://f1", "pfn://b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete of unmapped pair = %v, want ErrNotFound", err)
	}
	if err := db.DeleteMapping("lfn://nope", "pfn://a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete of missing lfn = %v, want ErrNotFound", err)
	}
}

func TestEmptyNamesRejected(t *testing.T) {
	db := newTestLRC(t)
	if err := db.CreateMapping("", "pfn://a"); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty logical = %v", err)
	}
	if err := db.CreateMapping("lfn://x", ""); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty target = %v", err)
	}
	if err := db.AddMapping("", ""); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty add = %v", err)
	}
}

func TestWildcardQueries(t *testing.T) {
	db := newTestLRC(t)
	db.CreateMapping("lfn://run1/a", "pfn://siteA/a")
	db.CreateMapping("lfn://run1/b", "pfn://siteA/b")
	db.CreateMapping("lfn://run2/c", "pfn://siteB/c")

	hits, err := db.WildcardTargets("lfn://run1/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 2 {
		t.Fatalf("wildcard targets = %v, want 2", hits)
	}
	for _, h := range hits {
		if h.Logical == "" || h.Target == "" {
			t.Fatalf("incomplete hit %+v", h)
		}
	}

	hits, err = db.WildcardLogicals("pfn://siteB/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 || hits[0].Logical != "lfn://run2/c" {
		t.Fatalf("wildcard logicals = %v", hits)
	}

	// Exact pattern (no wildcard) behaves as an exact match.
	hits, err = db.WildcardTargets("lfn://run2/c")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("exact-pattern hits = %v", hits)
	}
	// '?' matches a single character.
	hits, err = db.WildcardTargets("lfn://run?/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 1 {
		t.Fatalf("question-mark hits = %v", hits)
	}
}

func TestPageLogicalNames(t *testing.T) {
	db := newTestLRC(t)
	const n = 25
	for i := 0; i < n; i++ {
		db.CreateMapping(fmt.Sprintf("lfn-%03d", i), fmt.Sprintf("pfn-%03d", i))
	}
	var all []string
	after := ""
	for {
		page, err := db.PageLogicalNames(after, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(page) == 0 {
			break
		}
		all = append(all, page...)
		after = page[len(page)-1]
	}
	if len(all) != n {
		t.Fatalf("paged %d names, want %d", len(all), n)
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Fatalf("pages out of order: %q then %q", all[i-1], all[i])
		}
	}
	if _, err := db.PageLogicalNames("", 0); !errors.Is(err, ErrInvalid) {
		t.Fatal("zero limit accepted")
	}
}

func TestCounts(t *testing.T) {
	db := newTestLRC(t)
	db.CreateMapping("lfn://1", "pfn://shared")
	db.CreateMapping("lfn://2", "pfn://shared")
	db.AddMapping("lfn://1", "pfn://solo")
	l, p, m, err := db.Counts()
	if err != nil {
		t.Fatal(err)
	}
	if l != 2 || p != 2 || m != 3 {
		t.Fatalf("counts = %d logicals, %d targets, %d mappings; want 2/2/3", l, p, m)
	}
}

func TestOpenLRCDBRecoversCounters(t *testing.T) {
	dir := t.TempDir()
	eng, err := storage.Open(dir, storage.Options{Device: disk.New(disk.Fast())})
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewLRCDB(eng)
	if err != nil {
		t.Fatal(err)
	}
	db.CreateMapping("lfn://1", "pfn://1")
	db.CreateMapping("lfn://2", "pfn://2")
	eng.Close()

	eng2, err := storage.Open(dir, storage.Options{Device: disk.New(disk.Fast())})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	db2, err := OpenLRCDB(eng2)
	if err != nil {
		t.Fatal(err)
	}
	// New creations must not collide with recovered ids.
	if err := db2.CreateMapping("lfn://3", "pfn://3"); err != nil {
		t.Fatal(err)
	}
	targets, err := db2.GetTargets("lfn://1")
	if err != nil || len(targets) != 1 {
		t.Fatalf("recovered mapping: %v, %v", targets, err)
	}
	l, _, _, _ := db2.Counts()
	if l != 3 {
		t.Fatalf("logicals = %d, want 3", l)
	}
}

func TestAttributesLifecycle(t *testing.T) {
	db := newTestLRC(t)
	db.CreateMapping("lfn://f", "pfn://f")

	if err := db.DefineAttribute("size", wire.ObjTarget, wire.AttrInt); err != nil {
		t.Fatal(err)
	}
	if err := db.DefineAttribute("size", wire.ObjTarget, wire.AttrInt); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate define = %v", err)
	}
	// Same name for a different object type is a distinct attribute.
	if err := db.DefineAttribute("size", wire.ObjLogical, wire.AttrInt); err != nil {
		t.Fatal(err)
	}

	if err := db.AddAttribute("pfn://f", wire.ObjTarget, "size", wire.AttrValue{Type: wire.AttrInt, I: 1024}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddAttribute("pfn://f", wire.ObjTarget, "size", wire.AttrValue{Type: wire.AttrInt, I: 1}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate attr add = %v", err)
	}
	attrs, err := db.GetAttributes("pfn://f", wire.ObjTarget, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 1 || attrs[0].Name != "size" || attrs[0].Value.I != 1024 {
		t.Fatalf("attrs = %+v", attrs)
	}

	if err := db.ModifyAttribute("pfn://f", wire.ObjTarget, "size", wire.AttrValue{Type: wire.AttrInt, I: 2048}); err != nil {
		t.Fatal(err)
	}
	attrs, _ = db.GetAttributes("pfn://f", wire.ObjTarget, []string{"size"})
	if len(attrs) != 1 || attrs[0].Value.I != 2048 {
		t.Fatalf("after modify = %+v", attrs)
	}

	if err := db.RemoveAttribute("pfn://f", wire.ObjTarget, "size"); err != nil {
		t.Fatal(err)
	}
	if err := db.RemoveAttribute("pfn://f", wire.ObjTarget, "size"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second remove = %v", err)
	}
	attrs, _ = db.GetAttributes("pfn://f", wire.ObjTarget, nil)
	if len(attrs) != 0 {
		t.Fatalf("attrs after remove = %+v", attrs)
	}
}

func TestAttributeTypeEnforcement(t *testing.T) {
	db := newTestLRC(t)
	db.CreateMapping("lfn://f", "pfn://f")
	db.DefineAttribute("size", wire.ObjTarget, wire.AttrInt)
	err := db.AddAttribute("pfn://f", wire.ObjTarget, "size", wire.AttrValue{Type: wire.AttrString, S: "big"})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("type mismatch = %v, want ErrInvalid", err)
	}
	if err := db.AddAttribute("pfn://f", wire.ObjTarget, "undefined", wire.AttrValue{Type: wire.AttrInt, I: 1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("undefined attr = %v, want ErrNotFound", err)
	}
	if err := db.AddAttribute("pfn://missing", wire.ObjTarget, "size", wire.AttrValue{Type: wire.AttrInt, I: 1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing object = %v, want ErrNotFound", err)
	}
	if err := db.ModifyAttribute("pfn://f", wire.ObjTarget, "size", wire.AttrValue{Type: wire.AttrInt, I: 1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("modify before add = %v, want ErrNotFound", err)
	}
}

func TestAttributeAllTypes(t *testing.T) {
	db := newTestLRC(t)
	db.CreateMapping("lfn://f", "pfn://f")
	cases := []struct {
		name string
		typ  wire.AttrType
		val  wire.AttrValue
	}{
		{"checksum", wire.AttrString, wire.AttrValue{Type: wire.AttrString, S: "deadbeef"}},
		{"size", wire.AttrInt, wire.AttrValue{Type: wire.AttrInt, I: 42}},
		{"quality", wire.AttrFloat, wire.AttrValue{Type: wire.AttrFloat, F: 0.99}},
		{"created", wire.AttrDate, wire.AttrValue{Type: wire.AttrDate, I: 1086300000000000000}},
	}
	for _, c := range cases {
		if err := db.DefineAttribute(c.name, wire.ObjTarget, c.typ); err != nil {
			t.Fatalf("define %s: %v", c.name, err)
		}
		if err := db.AddAttribute("pfn://f", wire.ObjTarget, c.name, c.val); err != nil {
			t.Fatalf("add %s: %v", c.name, err)
		}
	}
	attrs, err := db.GetAttributes("pfn://f", wire.ObjTarget, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != len(cases) {
		t.Fatalf("got %d attrs, want %d: %+v", len(attrs), len(cases), attrs)
	}
	byName := map[string]wire.AttrValue{}
	for _, a := range attrs {
		byName[a.Name] = a.Value
	}
	if byName["checksum"].S != "deadbeef" || byName["size"].I != 42 ||
		byName["quality"].F != 0.99 || byName["created"].I != 1086300000000000000 {
		t.Fatalf("attr values = %+v", byName)
	}
}

func TestSearchAttribute(t *testing.T) {
	db := newTestLRC(t)
	db.DefineAttribute("size", wire.ObjTarget, wire.AttrInt)
	for i := 1; i <= 5; i++ {
		lfn := fmt.Sprintf("lfn://%d", i)
		pfn := fmt.Sprintf("pfn://%d", i)
		db.CreateMapping(lfn, pfn)
		db.AddAttribute(pfn, wire.ObjTarget, "size", wire.AttrValue{Type: wire.AttrInt, I: int64(i * 100)})
	}
	cases := []struct {
		cmp  wire.CmpOp
		val  int64
		want int
	}{
		{wire.CmpEQ, 300, 1},
		{wire.CmpNE, 300, 4},
		{wire.CmpLT, 300, 2},
		{wire.CmpLE, 300, 3},
		{wire.CmpGT, 300, 2},
		{wire.CmpGE, 300, 3},
		{wire.CmpAny, 0, 5},
	}
	for _, c := range cases {
		hits, err := db.SearchAttribute("size", wire.ObjTarget, c.cmp, wire.AttrValue{Type: wire.AttrInt, I: c.val})
		if err != nil {
			t.Fatalf("cmp %d: %v", c.cmp, err)
		}
		if len(hits) != c.want {
			t.Fatalf("cmp %d: %d hits, want %d", c.cmp, len(hits), c.want)
		}
	}
	if _, err := db.SearchAttribute("nope", wire.ObjTarget, wire.CmpEQ, wire.AttrValue{Type: wire.AttrInt}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("search undefined attr = %v", err)
	}
	if _, err := db.SearchAttribute("size", wire.ObjTarget, wire.CmpOp(99), wire.AttrValue{}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bad cmp = %v", err)
	}
	if _, err := db.SearchAttribute("size", wire.ObjTarget, wire.CmpEQ, wire.AttrValue{Type: wire.AttrString}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("probe type mismatch = %v", err)
	}
}

func TestUndefineAttribute(t *testing.T) {
	db := newTestLRC(t)
	db.CreateMapping("lfn://f", "pfn://f")
	db.DefineAttribute("size", wire.ObjTarget, wire.AttrInt)
	db.AddAttribute("pfn://f", wire.ObjTarget, "size", wire.AttrValue{Type: wire.AttrInt, I: 9})

	if err := db.UndefineAttribute("size", wire.ObjTarget, false); !errors.Is(err, ErrExists) {
		t.Fatalf("undefine with live values = %v, want ErrExists", err)
	}
	if err := db.UndefineAttribute("size", wire.ObjTarget, true); err != nil {
		t.Fatal(err)
	}
	if err := db.UndefineAttribute("size", wire.ObjTarget, true); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second undefine = %v", err)
	}
	attrs, _ := db.GetAttributes("pfn://f", wire.ObjTarget, nil)
	if len(attrs) != 0 {
		t.Fatalf("values remain after clearing undefine: %+v", attrs)
	}
}

func TestDeleteMappingCleansAttributes(t *testing.T) {
	db := newTestLRC(t)
	db.CreateMapping("lfn://f", "pfn://f")
	db.DefineAttribute("size", wire.ObjTarget, wire.AttrInt)
	db.AddAttribute("pfn://f", wire.ObjTarget, "size", wire.AttrValue{Type: wire.AttrInt, I: 9})
	db.DeleteMapping("lfn://f", "pfn://f")
	// Re-register the same names: attribute values must not resurface.
	db.CreateMapping("lfn://f", "pfn://f")
	attrs, err := db.GetAttributes("pfn://f", wire.ObjTarget, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(attrs) != 0 {
		t.Fatalf("stale attribute resurfaced: %+v", attrs)
	}
}

func TestRLITargets(t *testing.T) {
	db := newTestLRC(t)
	if err := db.AddRLITarget(wire.RLITarget{URL: "rls://rli1", Bloom: true}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRLITarget(wire.RLITarget{URL: "rls://rli2", Patterns: []string{"lfn://ligo/*", "lfn://esg/*"}}); err != nil {
		t.Fatal(err)
	}
	if err := db.AddRLITarget(wire.RLITarget{URL: "rls://rli1"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate RLI = %v", err)
	}
	if err := db.AddRLITarget(wire.RLITarget{URL: ""}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty url = %v", err)
	}
	if err := db.AddRLITarget(wire.RLITarget{URL: "rls://rli3", Patterns: []string{""}}); !errors.Is(err, ErrInvalid) {
		t.Fatalf("empty pattern = %v", err)
	}

	targets, err := db.ListRLITargets()
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 2 {
		t.Fatalf("targets = %+v", targets)
	}
	byURL := map[string]wire.RLITarget{}
	for _, tg := range targets {
		byURL[tg.URL] = tg
	}
	if !byURL["rls://rli1"].Bloom {
		t.Fatal("bloom flag lost")
	}
	if len(byURL["rls://rli2"].Patterns) != 2 {
		t.Fatalf("patterns = %v", byURL["rls://rli2"].Patterns)
	}

	if err := db.RemoveRLITarget("rls://rli2"); err != nil {
		t.Fatal(err)
	}
	if err := db.RemoveRLITarget("rls://rli2"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second remove = %v", err)
	}
	targets, _ = db.ListRLITargets()
	if len(targets) != 1 {
		t.Fatalf("targets after remove = %+v", targets)
	}
}

func TestListAttributeDefs(t *testing.T) {
	db := newTestLRC(t)
	db.DefineAttribute("size", wire.ObjTarget, wire.AttrInt)
	db.DefineAttribute("checksum", wire.ObjTarget, wire.AttrString)
	db.DefineAttribute("project", wire.ObjLogical, wire.AttrString)

	defs, err := db.ListAttributeDefs(wire.ObjTarget)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 2 {
		t.Fatalf("target defs = %+v", defs)
	}
	if defs[0].Name != "checksum" || defs[1].Name != "size" {
		t.Fatalf("defs not sorted by name: %+v", defs)
	}
	if defs[1].Type != wire.AttrInt {
		t.Fatalf("size type = %v", defs[1].Type)
	}

	all, err := db.ListAttributeDefs(0)
	if err != nil || len(all) != 3 {
		t.Fatalf("all defs = %+v, %v", all, err)
	}
	if _, err := db.ListAttributeDefs(wire.ObjType(99)); !errors.Is(err, ErrInvalid) {
		t.Fatalf("bad obj type = %v", err)
	}
}
