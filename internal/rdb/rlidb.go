package rdb

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/glob"
	"repro/internal/storage"
	"repro/internal/wire"
)

// RLI table names. t_lfn is shared by name with the LRC schema but lives in
// a separate engine (one database per server, as in the paper's deployment).
const (
	tRLILFN = "t_lfn"
	tLRC    = "t_lrc"
	tRLIMap = "t_map"
)

// RLI t_map columns: lfn_id, lrc_id, updatetime.
const (
	colRMapLFN  = 0
	colRMapLRC  = 1
	colRMapTime = 2
)

func rliSchemas() []storage.Schema {
	return []storage.Schema{
		nameTableSchema(tRLILFN),
		nameTableSchema(tLRC),
		{
			Name: tRLIMap,
			Columns: []storage.Column{
				{Name: "lfn_id", Kind: storage.KindInt},
				{Name: "lrc_id", Kind: storage.KindInt},
				{Name: "updatetime", Kind: storage.KindTime},
			},
			Indexes: []storage.IndexSpec{
				{Name: "by_pair", Columns: []string{"lfn_id", "lrc_id"}, Unique: true},
				{Name: "by_lfn", Columns: []string{"lfn_id"}},
				{Name: "by_lrc", Columns: []string{"lrc_id"}},
				{Name: "by_time", Columns: []string{"updatetime"}},
			},
		},
	}
}

// RLIDB is the database behind an RLI that receives full or incremental
// (uncompressed) soft state updates: associations from logical names to the
// LRCs that hold mappings for them, stamped with the update time examined by
// the expire thread.
type RLIDB struct {
	eng *storage.Engine

	nextLFN atomic.Int64
	nextLRC atomic.Int64
}

// NewRLIDB creates the RLI tables on the engine and returns the handle.
func NewRLIDB(eng *storage.Engine) (*RLIDB, error) {
	for _, s := range rliSchemas() {
		if err := eng.CreateTable(s); err != nil {
			return nil, err
		}
	}
	return &RLIDB{eng: eng}, nil
}

// OpenRLIDB attaches to an engine whose RLI tables already exist,
// recovering the id counters.
func OpenRLIDB(eng *storage.Engine) (*RLIDB, error) {
	db := &RLIDB{eng: eng}
	err := eng.SnapshotView(func(r *storage.Reader) error {
		for _, rec := range []struct {
			table string
			ctr   *atomic.Int64
		}{{tRLILFN, &db.nextLFN}, {tLRC, &db.nextLRC}} {
			maxID := int64(0)
			if err := r.ScanPrefix(rec.table, "by_id", nil, func(_ int64, row storage.Row) bool {
				maxID = row[0].Int
				return true
			}); err != nil {
				return err
			}
			rec.ctr.Store(maxID)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return db, nil
}

// Engine exposes the backing engine.
func (db *RLIDB) Engine() *storage.Engine { return db.eng }

func (db *RLIDB) getOrCreate(tx *storage.Tx, table string, ctr *atomic.Int64, name string) (int64, error) {
	rows, err := tx.Lookup(table, "by_name", storage.String(name))
	if err != nil {
		return 0, err
	}
	if len(rows) > 0 {
		return rows[0][colNameID].Int, nil
	}
	id := ctr.Add(1)
	if _, err := tx.Insert(table, storage.Row{storage.Int64(id), storage.String(name), storage.Int64(0)}); err != nil {
		return 0, err
	}
	return id, nil
}

// UpsertNames records that the given LRC holds mappings for the listed
// logical names as of now: new {LFN, LRC} associations are inserted and
// existing ones have their updatetime refreshed. This is the ingest path of
// both full updates (batch by batch) and the added-half of incremental
// updates.
func (db *RLIDB) UpsertNames(lrcURL string, names []string, now time.Time) error {
	if lrcURL == "" {
		return fmt.Errorf("%w: empty LRC url", ErrInvalid)
	}
	tx, err := db.eng.Begin(tRLILFN, tLRC, tRLIMap)
	if err != nil {
		return err
	}
	defer tx.Rollback()
	lrcID, err := db.getOrCreate(tx, tLRC, &db.nextLRC, lrcURL)
	if err != nil {
		return err
	}
	for _, name := range names {
		if name == "" {
			continue
		}
		lfnID, err := db.getOrCreate(tx, tRLILFN, &db.nextLFN, name)
		if err != nil {
			return err
		}
		rowids, _, err := tx.LookupIDs(tRLIMap, "by_pair", storage.Int64(lfnID), storage.Int64(lrcID))
		if err != nil {
			return err
		}
		// Refresh = delete + reinsert with the new timestamp (an SQL
		// UPDATE of updatetime).
		for _, rowid := range rowids {
			if _, err := tx.Delete(tRLIMap, rowid); err != nil {
				return err
			}
		}
		row := storage.Row{storage.Int64(lfnID), storage.Int64(lrcID), storage.Timestamp(now)}
		if _, err := tx.Insert(tRLIMap, row); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// RemoveNames drops the {LFN, LRC} associations for the listed names — the
// removed-half of incremental updates.
func (db *RLIDB) RemoveNames(lrcURL string, names []string) error {
	tx, err := db.eng.Begin(tRLILFN, tLRC, tRLIMap)
	if err != nil {
		return err
	}
	defer tx.Rollback()
	lrcRows, err := tx.Lookup(tLRC, "by_name", storage.String(lrcURL))
	if err != nil {
		return err
	}
	if len(lrcRows) == 0 {
		return tx.Commit() // nothing registered from this LRC
	}
	lrcID := lrcRows[0][colNameID].Int
	for _, name := range names {
		lfnRows, err := tx.Lookup(tRLILFN, "by_name", storage.String(name))
		if err != nil {
			return err
		}
		if len(lfnRows) == 0 {
			continue
		}
		lfnID := lfnRows[0][colNameID].Int
		rowids, _, err := tx.LookupIDs(tRLIMap, "by_pair", storage.Int64(lfnID), storage.Int64(lrcID))
		if err != nil {
			return err
		}
		for _, rowid := range rowids {
			if _, err := tx.Delete(tRLIMap, rowid); err != nil {
				return err
			}
		}
		if err := db.cleanupLFN(tx, lfnID); err != nil {
			return err
		}
	}
	return tx.Commit()
}

// cleanupLFN removes an RLI t_lfn row once no associations reference it.
func (db *RLIDB) cleanupLFN(tx *storage.Tx, lfnID int64) error {
	remaining := false
	if err := tx.ScanPrefix(tRLIMap, "by_lfn", []storage.Value{storage.Int64(lfnID)}, func(int64, storage.Row) bool {
		remaining = true
		return false
	}); err != nil {
		return err
	}
	if remaining {
		return nil
	}
	rowids, _, err := tx.LookupIDs(tRLILFN, "by_id", storage.Int64(lfnID))
	if err != nil {
		return err
	}
	for _, rowid := range rowids {
		if _, err := tx.Delete(tRLILFN, rowid); err != nil {
			return err
		}
	}
	return nil
}

// QueryLRCs returns the LRC urls believed to hold mappings for the logical
// name. Soft state means the answer may be stale — the client recovers by
// querying the LRCs (paper §3.2).
func (db *RLIDB) QueryLRCs(logical string) ([]string, error) {
	var out []string
	err := db.eng.SnapshotView(func(r *storage.Reader) error {
		rows, err := r.Lookup(tRLILFN, "by_name", storage.String(logical))
		if err != nil {
			return err
		}
		if len(rows) == 0 {
			return fmt.Errorf("%w: logical name %q", ErrNotFound, logical)
		}
		lfnID := rows[0][colNameID].Int
		maps, err := r.Lookup(tRLIMap, "by_lfn", storage.Int64(lfnID))
		if err != nil {
			return err
		}
		for _, m := range maps {
			lrcs, err := r.Lookup(tLRC, "by_id", m[colRMapLRC])
			if err != nil {
				return err
			}
			if len(lrcs) > 0 {
				out = append(out, lrcs[0][colNameName].Str)
			}
		}
		return nil
	})
	return out, err
}

// WildcardQuery returns (logical name, LRC url) pairs for logical names
// matching the wildcard pattern. This is the RLI capability that Bloom
// filter compression gives up (paper §5.4: wildcard searches "are not
// possible when using Bloom filter compression").
func (db *RLIDB) WildcardQuery(pattern string) ([]wire.Mapping, error) {
	prefix, _ := glob.LiteralPrefix(pattern)
	var out []wire.Mapping
	err := db.eng.SnapshotView(func(r *storage.Reader) error {
		var scanErr error
		if err := r.ScanStringPrefix(tRLILFN, "by_name", prefix, func(_ int64, row storage.Row) bool {
			name := row[colNameName].Str
			if !glob.Match(pattern, name) {
				return true
			}
			maps, err := r.Lookup(tRLIMap, "by_lfn", row[colNameID])
			if err != nil {
				scanErr = err
				return false
			}
			for _, m := range maps {
				lrcs, err := r.Lookup(tLRC, "by_id", m[colRMapLRC])
				if err != nil {
					scanErr = err
					return false
				}
				if len(lrcs) > 0 {
					out = append(out, wire.Mapping{Logical: name, Target: lrcs[0][colNameName].Str})
				}
			}
			return true
		}); err != nil {
			return err
		}
		return scanErr
	})
	return out, err
}

// ExpireBefore drops every association whose updatetime is older than the
// cutoff — the expire thread's work ("discarding entries older than the
// allowed timeout interval"). It returns the number of associations
// dropped.
func (db *RLIDB) ExpireBefore(cutoff time.Time) (int, error) {
	tx, err := db.eng.Begin(tRLILFN, tRLIMap)
	if err != nil {
		return 0, err
	}
	defer tx.Rollback()
	type victim struct {
		rowid int64
		lfnID int64
	}
	var victims []victim
	if err := tx.ScanPrefix(tRLIMap, "by_time", nil, func(rowid int64, row storage.Row) bool {
		if !row[colRMapTime].Time.Before(cutoff) {
			return false // time-ordered index: nothing older remains
		}
		victims = append(victims, victim{rowid: rowid, lfnID: row[colRMapLFN].Int})
		return true
	}); err != nil {
		return 0, err
	}
	for _, v := range victims {
		if _, err := tx.Delete(tRLIMap, v.rowid); err != nil {
			return 0, err
		}
	}
	for _, v := range victims {
		if err := db.cleanupLFN(tx, v.lfnID); err != nil {
			return 0, err
		}
	}
	if err := tx.Commit(); err != nil {
		return 0, err
	}
	return len(victims), nil
}

// NamesForLRC returns every logical name associated with the given LRC, in
// lexical order — the enumeration hierarchical RLIs use to forward their
// aggregated state upward.
func (db *RLIDB) NamesForLRC(lrcURL string) ([]string, error) {
	var out []string
	err := db.eng.SnapshotView(func(r *storage.Reader) error {
		lrcRows, err := r.Lookup(tLRC, "by_name", storage.String(lrcURL))
		if err != nil {
			return err
		}
		if len(lrcRows) == 0 {
			return nil
		}
		lrcID := lrcRows[0][colNameID].Int
		var scanErr error
		if err := r.ScanPrefix(tRLIMap, "by_lrc", []storage.Value{storage.Int64(lrcID)}, func(_ int64, row storage.Row) bool {
			lfns, err := r.Lookup(tRLILFN, "by_id", row[colRMapLFN])
			if err != nil {
				scanErr = err
				return false
			}
			if len(lfns) > 0 {
				out = append(out, lfns[0][colNameName].Str)
			}
			return true
		}); err != nil {
			return err
		}
		return scanErr
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// LRCs returns the LRC urls that have sent updates to this RLI.
func (db *RLIDB) LRCs() ([]string, error) {
	var out []string
	err := db.eng.SnapshotView(func(r *storage.Reader) error {
		return r.ScanStringPrefix(tLRC, "by_name", "", func(_ int64, row storage.Row) bool {
			out = append(out, row[colNameName].Str)
			return true
		})
	})
	return out, err
}

// Counts reports index occupancy: distinct logical names, LRCs, and
// associations.
func (db *RLIDB) Counts() (logicals, lrcs, associations int64, err error) {
	err = db.eng.SnapshotView(func(r *storage.Reader) error {
		if logicals, err = r.Count(tRLILFN); err != nil {
			return err
		}
		if lrcs, err = r.Count(tLRC); err != nil {
			return err
		}
		associations, err = r.Count(tRLIMap)
		return err
	})
	return logicals, lrcs, associations, err
}
