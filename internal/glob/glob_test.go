package glob

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMatch(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"", "", true},
		{"", "x", false},
		{"*", "", true},
		{"*", "anything", true},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"abc", "ab", false},
		{"a?c", "abc", true},
		{"a?c", "ac", false},
		{"a?c", "abbc", false},
		{"lfn-*", "lfn-00001", true},
		{"lfn-*", "pfn-00001", false},
		{"*-suffix", "name-suffix", true},
		{"*-suffix", "name-suffixx", false},
		{"a*b*c", "aXXbYYc", true},
		{"a*b*c", "abc", true},
		{"a*b*c", "acb", false},
		// A '*' in the name must not be literal-matched by a '*' in the
		// pattern (fuzz regression: Match("*", "*0") returned false).
		{"*", "*0", true},
		{"*x", "*x", true},
		{"a*", "a*b", true},
		{"**", "x", true},
		{"*?", "", false},
		{"*?", "x", true},
		{"lfn://site/*/run?", "lfn://site/2004/run7", true},
		{"lfn://site/*/run?", "lfn://site/2004/run77", false},
	}
	for _, c := range cases {
		if got := Match(c.pattern, c.name); got != c.want {
			t.Errorf("Match(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

func TestLiteralPrefix(t *testing.T) {
	cases := []struct {
		pattern string
		prefix  string
		wild    bool
	}{
		{"", "", false},
		{"abc", "abc", false},
		{"abc*", "abc", true},
		{"a?c", "a", true},
		{"*abc", "", true},
		{"ab*cd?e", "ab", true},
	}
	for _, c := range cases {
		prefix, wild := LiteralPrefix(c.pattern)
		if prefix != c.prefix || wild != c.wild {
			t.Errorf("LiteralPrefix(%q) = %q, %v; want %q, %v", c.pattern, prefix, wild, c.prefix, c.wild)
		}
	}
}

func TestHasWildcard(t *testing.T) {
	if HasWildcard("plain") {
		t.Fatal("plain string reported wildcard")
	}
	if !HasWildcard("a*") || !HasWildcard("a?") {
		t.Fatal("wildcard not detected")
	}
}

func TestQuickExactPatternsMatchThemselves(t *testing.T) {
	check := func(s string) bool {
		if strings.ContainsAny(s, "*?") {
			return true // not an exact pattern
		}
		return Match(s, s)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickStarMatchesEverything(t *testing.T) {
	check := func(s string) bool { return Match("*", s) }
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPrefixStarMatchesOwnPrefix(t *testing.T) {
	check := func(s string) bool {
		if strings.ContainsAny(s, "*?") || len(s) == 0 {
			return true
		}
		half := s[:len(s)/2]
		return Match(half+"*", s)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLiteralPrefixIsActualPrefix(t *testing.T) {
	check := func(pattern, name string) bool {
		prefix, _ := LiteralPrefix(pattern)
		if Match(pattern, name) && !strings.HasPrefix(name, prefix) {
			return false // a match must start with the literal prefix
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatchLongName(b *testing.B) {
	pattern := "lfn://ligo/*/frames/run?/*.gwf"
	name := "lfn://ligo/H1/frames/run7/H-R-795849To795850.gwf"
	for i := 0; i < b.N; i++ {
		Match(pattern, name)
	}
}
