// Package glob implements the wildcard pattern language of RLS queries:
// '*' matches any run of characters (including empty) and '?' matches
// exactly one character. All other characters match themselves.
//
// Patterns are used by the wildcard query operations of Table 1 (LRC and
// RLI "wildcard queries"). LiteralPrefix lets the database layer bound an
// ordered-index scan by the pattern's leading literal characters instead of
// scanning the whole table.
package glob

// Match reports whether name matches pattern.
func Match(pattern, name string) bool {
	// Iterative matcher with single backtrack point: the classic
	// linear-space '*' algorithm.
	var (
		p, n         int
		starP, starN int
		haveStar     bool
	)
	for n < len(name) {
		switch {
		// '*' must be recognized before the literal case: a name character
		// that is itself '*' would otherwise consume the pattern star as a
		// literal match and lose its any-run semantics.
		case p < len(pattern) && pattern[p] == '*':
			haveStar = true
			starP = p
			starN = n
			p++
		case p < len(pattern) && (pattern[p] == '?' || pattern[p] == name[n]):
			p++
			n++
		case haveStar:
			// Backtrack: let the last '*' absorb one more character.
			starN++
			p = starP + 1
			n = starN
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '*' {
		p++
	}
	return p == len(pattern)
}

// LiteralPrefix returns the pattern's leading literal characters (up to the
// first wildcard) and whether the pattern contains any wildcard at all. A
// pattern with no wildcards is an exact-match query.
func LiteralPrefix(pattern string) (prefix string, hasWildcard bool) {
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == '*' || pattern[i] == '?' {
			return pattern[:i], true
		}
	}
	return pattern, false
}

// HasWildcard reports whether the pattern contains '*' or '?'.
func HasWildcard(pattern string) bool {
	_, has := LiteralPrefix(pattern)
	return has
}
