package glob

import (
	"strings"
	"testing"
)

// FuzzGlobMatch cross-checks the iterative matcher against a simple
// recursive reference implementation on arbitrary pattern/name pairs, and
// checks the LiteralPrefix invariants: the prefix is literal, it prefixes
// every matching name, and a wildcard-free pattern matches only itself.
func FuzzGlobMatch(f *testing.F) {
	f.Add("lfn://sample.*", "lfn://sample.42")
	f.Add("*?*", "ab")
	f.Add("", "")
	f.Add("a**b?c", "axxbyc")
	f.Fuzz(func(t *testing.T, pattern, name string) {
		if len(pattern) > 64 || len(name) > 256 {
			return // keep the exponential reference matcher tractable
		}
		got := Match(pattern, name)
		want := refMatch(pattern, name)
		if got != want {
			t.Fatalf("Match(%q, %q) = %v, reference says %v", pattern, name, got, want)
		}

		prefix, hasWild := LiteralPrefix(pattern)
		if strings.ContainsAny(prefix, "*?") {
			t.Fatalf("LiteralPrefix(%q) = %q contains a wildcard", pattern, prefix)
		}
		if hasWild != HasWildcard(pattern) {
			t.Fatalf("LiteralPrefix and HasWildcard disagree on %q", pattern)
		}
		if got && !strings.HasPrefix(name, prefix) {
			t.Fatalf("match %q ~ %q but name lacks literal prefix %q", pattern, name, prefix)
		}
		if !hasWild && got != (pattern == name) {
			t.Fatalf("wildcard-free pattern %q matched %q", pattern, name)
		}
	})
}

// refMatch is the obviously-correct exponential recursive matcher.
func refMatch(pattern, name string) bool {
	if pattern == "" {
		return name == ""
	}
	switch pattern[0] {
	case '*':
		for i := 0; i <= len(name); i++ {
			if refMatch(pattern[1:], name[i:]) {
				return true
			}
		}
		return false
	case '?':
		return name != "" && refMatch(pattern[1:], name[1:])
	default:
		return name != "" && name[0] == pattern[0] && refMatch(pattern[1:], name[1:])
	}
}
