package core

import (
	"testing"

	"repro/internal/wire"
)

// TestStatsOverWire exercises the full observability path against a live
// LRC+RLI pair: per-op dispatch counters, soft-state sender health after a
// forced update, RLI Bloom-store occupancy and storage-engine activity, all
// fetched through the stats opcode.
func TestStatsOverWire(t *testing.T) {
	d, lc, rc := newPair(t)

	if err := lc.CreateMapping(ctx, "lfn://exp/f1", "gsiftp://siteA/f1"); err != nil {
		t.Fatal(err)
	}
	if err := lc.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	node, _ := d.Node("lrc1")
	for _, res := range node.LRC.ForceUpdate(ctx) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}

	lst, err := lc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if lst.Role != "lrc" || lst.URL != "rls://lrc1" {
		t.Fatalf("lrc stats identity: %+v", lst)
	}
	var create, ping *wire.OpStat
	for i := range lst.Ops {
		switch lst.Ops[i].Op {
		case wire.OpLRCCreateMapping:
			create = &lst.Ops[i]
		case wire.OpPing:
			ping = &lst.Ops[i]
		}
	}
	if create == nil || create.Count != 1 {
		t.Fatalf("create op stat missing or wrong: %+v", lst.Ops)
	}
	if ping == nil || ping.Count < 1 {
		t.Fatalf("ping op stat missing: %+v", lst.Ops)
	}
	if create.P50NS > create.P99NS || create.P99NS > create.MaxNS {
		t.Fatalf("create percentiles not monotone: %+v", create)
	}
	if len(lst.SoftState) != 1 {
		t.Fatalf("soft-state targets = %d, want 1", len(lst.SoftState))
	}
	tg := lst.SoftState[0]
	if tg.URL != "rls://rli1" || tg.Sent != 1 || tg.NamesSent != 1 || tg.LastSuccessUnix == 0 {
		t.Fatalf("soft-state target stat: %+v", tg)
	}
	// The LRC's engine did real work; the WAL must show it.
	if lst.WALAppends == 0 {
		t.Fatal("WALAppends = 0 after a mapping write")
	}

	// The RLI side: the soft-state ingest ops arrived over the wire.
	rst, err := rc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rst.Role != "rli" {
		t.Fatalf("rli role = %q", rst.Role)
	}
	var sawIngest bool
	for _, o := range rst.Ops {
		if o.Op == wire.OpSSFullBatch && o.Count >= 1 {
			sawIngest = true
		}
	}
	if !sawIngest {
		t.Fatalf("no ss_full_batch dispatches recorded at RLI: %+v", rst.Ops)
	}
}

// TestStatsReportsBloomStore verifies the RLI-side Bloom occupancy counters
// after a compressed update.
func TestStatsReportsBloomStore(t *testing.T) {
	d := NewDeployment()
	t.Cleanup(d.Close)
	if _, err := d.AddServer(fastSpec("lrc1", true, false)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddServer(fastSpec("rli1", false, true)); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("lrc1", "rli1", true); err != nil { // Bloom updates
		t.Fatal(err)
	}
	node, _ := d.Node("lrc1")
	if err := node.LRC.CreateMapping(ctx, "lfn://a", "pfn://a"); err != nil {
		t.Fatal(err)
	}
	for _, res := range node.LRC.ForceUpdate(ctx) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	rc, err := d.Dial("rli1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	st, err := rc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.RLIBloomFilters != 1 || st.RLIBloomBytes <= 0 {
		t.Fatalf("bloom store stats: filters=%d bytes=%d", st.RLIBloomFilters, st.RLIBloomBytes)
	}
}
