package core

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/disk"
	"repro/internal/lrc"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// TestRLIFailureAndSoftStateReconstruction exercises the paper's §2 claim
// end to end: "If an RLI fails and later resumes operation, its state can
// be reconstructed using soft state updates."
func TestRLIFailureAndSoftStateReconstruction(t *testing.T) {
	ctx := context.Background()
	d := NewDeployment()
	defer d.Close()
	if _, err := d.AddServer(fastSpec("lrc1", true, false)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddServer(fastSpec("rli1", false, true)); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("lrc1", "rli1", false); err != nil {
		t.Fatal(err)
	}
	lc, _ := d.Dial("lrc1")
	defer lc.Close()
	lc.CreateMapping(ctx, "lfn://durable", "pfn://x")
	lnode, _ := d.Node("lrc1")
	for _, res := range lnode.LRC.ForceUpdate(ctx) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}

	// RLI "fails": kill its server and throw away its (memory) state by
	// replacing the node with a fresh one under a new name, then point the
	// LRC at the replacement. (RLIs need no persistent state — that's the
	// point of soft state.)
	rnode, _ := d.Node("rli1")
	rnode.Server.Close()
	if _, err := d.AddServer(fastSpec("rli1b", false, true)); err != nil {
		t.Fatal(err)
	}
	if err := lc.RemoveRLITarget(ctx, "rls://rli1"); err != nil {
		t.Fatal(err)
	}
	if err := lc.AddRLITarget(ctx, wire.RLITarget{URL: "rls://rli1b"}); err != nil {
		t.Fatal(err)
	}

	// The fresh RLI knows nothing until the next soft state update.
	rc, _ := d.Dial("rli1b")
	defer rc.Close()
	if _, err := rc.RLIQuery(ctx, "lfn://durable"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("fresh RLI answered before reconstruction: %v", err)
	}
	for _, res := range lnode.LRC.ForceUpdate(ctx) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	lrcs, err := rc.RLIQuery(ctx, "lfn://durable")
	if err != nil || len(lrcs) != 1 {
		t.Fatalf("reconstructed RLI = %v, %v", lrcs, err)
	}
}

// TestUpdateFailsOnDroppedLink injects a link fault mid-update and checks
// the LRC reports the error and succeeds on retry.
func TestUpdateFailsOnDroppedLink(t *testing.T) {
	d := NewDeployment()
	defer d.Close()
	if _, err := d.AddServer(fastSpec("rli1", false, true)); err != nil {
		t.Fatal(err)
	}
	rnode, _ := d.Node("rli1")

	// Build an LRC whose dialer cuts the link after a byte budget on the
	// first attempt and works normally afterwards.
	attempt := 0
	spec := fastSpec("lrc1", true, false)
	if _, err := d.AddServer(spec); err != nil {
		t.Fatal(err)
	}
	lnode, _ := d.Node("lrc1")
	svc, err := lrc.New(ctx, lrc.Config{
		URL: "rls://lrc1-flaky",
		DB:  lnode.LRC.DB(),
		Dial: func(ctx context.Context, url string) (lrc.Updater, error) {
			attempt++
			budget := int64(1 << 62)
			if attempt == 1 {
				budget = 256 // dies mid-update
			}
			return client.Dial(ctx, client.Options{
				Dialer: func() (net.Conn, error) {
					clientEnd, serverEnd := net.Pipe()
					go rnode.Server.ServeConn(serverEnd)
					return netsim.DropAfter(clientEnd, budget), nil
				},
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if err := svc.AddRLITarget(ctx, wire.RLITarget{URL: "rls://rli1"}); err != nil {
		t.Fatal(err)
	}

	lc, _ := d.Dial("lrc1")
	defer lc.Close()
	for i := 0; i < 100; i++ {
		if err := lc.CreateMapping(ctx, fmt.Sprintf("lfn://flaky/%03d", i), fmt.Sprintf("pfn://%03d", i)); err != nil {
			t.Fatal(err)
		}
	}

	results := svc.ForceUpdate(ctx)
	if len(results) != 1 || results[0].Err == nil {
		t.Fatalf("first update should fail on injected fault: %+v", results)
	}
	results = svc.ForceUpdate(ctx)
	if results[0].Err != nil {
		t.Fatalf("retry failed: %v", results[0].Err)
	}
	rc, _ := d.Dial("rli1")
	defer rc.Close()
	if _, err := rc.RLIQuery(ctx, "lfn://flaky/050"); err != nil {
		t.Fatalf("state missing after retry: %v", err)
	}
}

// TestExpirationEndToEnd drives the RLI expire thread with a fake clock
// across the full deployment stack.
func TestExpirationEndToEnd(t *testing.T) {
	fc := clock.NewFake(time.Unix(1_000_000, 0))
	d := NewDeployment()
	defer d.Close()
	fast := disk.Fast()
	if _, err := d.AddServer(ServerSpec{Name: "lrc1", LRC: true, Disk: &fast}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddServer(ServerSpec{
		Name: "rli1", RLI: true, Disk: &fast,
		Clock:             fc,
		RLITimeout:        time.Minute,
		RLIExpireInterval: 10 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("lrc1", "rli1", false); err != nil {
		t.Fatal(err)
	}
	lc, _ := d.Dial("lrc1")
	defer lc.Close()
	lc.CreateMapping(ctx, "lfn://fleeting", "pfn://x")
	lnode, _ := d.Node("lrc1")
	for _, res := range lnode.LRC.ForceUpdate(ctx) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	rc, _ := d.Dial("rli1")
	defer rc.Close()
	if _, err := rc.RLIQuery(ctx, "lfn://fleeting"); err != nil {
		t.Fatal(err)
	}
	// No refresh for two minutes of virtual time: the entry must expire.
	rnode, _ := d.Node("rli1")
	fc.Advance(2 * time.Minute)
	if n, err := rnode.RLI.ExpireNow(ctx); err != nil || n != 1 {
		t.Fatalf("ExpireNow = %d, %v", n, err)
	}
	if _, err := rc.RLIQuery(ctx, "lfn://fleeting"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("expired entry still answered: %v", err)
	}
	// A fresh update restores it — the steady-state refresh cycle.
	for _, res := range lnode.LRC.ForceUpdate(ctx) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	if _, err := rc.RLIQuery(ctx, "lfn://fleeting"); err != nil {
		t.Fatalf("refreshed entry missing: %v", err)
	}
}

// TestBulkAttributesOverWire covers the bulk attribute paths end to end.
func TestBulkAttributesOverWire(t *testing.T) {
	_, lc, _ := newPair(t)
	lc.CreateMapping(ctx, "lfn://f", "pfn://f")
	if err := lc.DefineAttribute(ctx, "size", wire.ObjTarget, wire.AttrInt); err != nil {
		t.Fatal(err)
	}
	items := []wire.AttrWriteRequest{
		{Key: "pfn://f", Obj: wire.ObjTarget, Name: "size", Value: wire.AttrValue{Type: wire.AttrInt, I: 1}},
		{Key: "pfn://missing", Obj: wire.ObjTarget, Name: "size", Value: wire.AttrValue{Type: wire.AttrInt, I: 2}},
	}
	failures, err := lc.BulkAddAttributes(ctx, items)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || failures[0].Index != 1 || failures[0].Status != wire.StatusNotFound {
		t.Fatalf("failures = %+v", failures)
	}
	rem := []wire.AttrRemoveRequest{
		{Key: "pfn://f", Obj: wire.ObjTarget, Name: "size"},
		{Key: "pfn://f", Obj: wire.ObjTarget, Name: "size"}, // second remove fails
	}
	failures, err = lc.BulkRemoveAttributes(ctx, rem)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 1 || failures[0].Index != 1 {
		t.Fatalf("remove failures = %+v", failures)
	}
}

func TestDropAfterFaultInjection(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	fc := netsim.DropAfter(a, 4)
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := b.Read(buf); err != nil {
				return
			}
		}
	}()
	if _, err := fc.Write([]byte("ab")); err != nil {
		t.Fatalf("in-budget write failed: %v", err)
	}
	if _, err := fc.Write([]byte("cdef")); err == nil {
		t.Fatal("budget-crossing write succeeded")
	}
	if _, err := fc.Write([]byte("x")); err == nil {
		t.Fatal("post-fault write succeeded")
	}
}
