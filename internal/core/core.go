// Package core is the public facade of the RLS reproduction: it assembles
// storage engines, LRC/RLI services, servers and transports into a running
// Replica Location Service deployment, either in-process (zero-syscall
// pipes, optionally shaped to LAN/WAN conditions) or on TCP listeners.
//
// A Deployment is the programmatic equivalent of the paper's static
// configuration files (§3.6: "we use a simple static configuration of LRCs
// and RLIs"): add servers, connect LRCs to the RLIs they update, dial
// clients.
package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/auth"
	"repro/internal/backoff"
	"repro/internal/client"
	"repro/internal/clock"
	"repro/internal/disk"
	"repro/internal/lrc"
	"repro/internal/netsim"
	"repro/internal/rdb"
	"repro/internal/ring"
	"repro/internal/rli"
	"repro/internal/server"
	"repro/internal/storage"
	"repro/internal/wire"
)

// ServerSpec describes one RLS server to add to a deployment.
type ServerSpec struct {
	// Name identifies the server within the deployment; its in-process URL
	// is "rls://<name>".
	Name string
	// LRC and RLI select the roles; at least one must be set unless the
	// server carries the membership (seed) role via Members.
	LRC bool
	RLI bool

	// Members, when set, makes this server a membership seed: it serves the
	// member join/leave/heartbeat/view opcodes from the given registry
	// (typically a *membership.Registry). The caller owns the registry's
	// lifecycle — Deployment.Close does not stop it.
	Members server.Membership

	// Listen starts a TCP listener on 127.0.0.1 (ephemeral port) in
	// addition to the in-process transport.
	Listen bool
	// ListenAddr starts a TCP listener on an explicit address (host:port),
	// taking precedence over Listen.
	ListenAddr string
	// Net shapes every connection to this server (LAN, WAN, unshaped).
	Net netsim.Profile
	// Faults optionally subjects every in-process connection dialed to this
	// server — client dials and LRC soft-state updater dials alike — to the
	// fault-injection layer, composing with Net shaping (faults outermost).
	// The chaos harness uses this to reset, stall, drop, or partition one
	// node's links mid-run and heal them later.
	Faults *netsim.Faults

	// Personality selects the database back end behaviour (MySQL-like or
	// PostgreSQL-like).
	Personality storage.Personality
	// FlushOnCommit enables the per-transaction database flush of Figure 4.
	FlushOnCommit bool
	// Disk configures the simulated device; zero value means the 2004-era
	// default model. Use disk.Fast() for cost-free storage.
	Disk *disk.Params
	// DataDir persists the database under a directory; empty runs in
	// memory.
	DataDir string

	// ImmediateMode enables incremental soft state updates (§3.3).
	ImmediateMode      bool
	ImmediateInterval  time.Duration
	ImmediateThreshold int
	// FullInterval spaces periodic full updates; zero leaves updates to
	// explicit ForceUpdate calls.
	FullInterval time.Duration
	// FullBatch overrides the names-per-frame batch size of full updates.
	FullBatch int
	// BloomSizeHint pre-sizes the LRC Bloom filter.
	BloomSizeHint int

	// RLITimeout and RLIExpireInterval configure the RLI expire thread.
	RLITimeout        time.Duration
	RLIExpireInterval time.Duration

	// Auth enables authentication/authorization; nil means open mode.
	Auth *auth.Authenticator
	// Clock overrides the time source (fake clocks in tests).
	Clock clock.Clock

	// MaxInFlight caps requests dispatched concurrently per connection by
	// this server; values <= 1 keep the lock-step per-connection loop.
	MaxInFlight int
	// SSWindow pipelines soft-state updates sent by this LRC: the number
	// of full-update batches kept in flight per RLI target
	// (lrc.Config.UpdateWindow); values <= 1 keep lock-step sends with a
	// fresh dial per update.
	SSWindow int
	// SSConns sizes the soft-state connection pool per RLI target; values
	// <= 1 use a single connection.
	SSConns int
	// SSBackoff spaces this LRC's half-open probes to quarantined RLI
	// targets; the zero value uses the backoff package defaults.
	SSBackoff backoff.Policy
	// SSFailThreshold is the consecutive-failure count after which an RLI
	// target is quarantined; zero uses backoff.DefaultFailThreshold.
	SSFailThreshold int
	// SSBreakerSeed makes per-target probe jitter deterministic for tests
	// and the chaos harness.
	SSBreakerSeed int64

	// ShardRing and ShardSelf give a sharded LRC its ring identity:
	// logical-keyed mutations whose ring owner is not ShardSelf are
	// rejected (lrc.NotOwnerError). Nil ShardRing disables sharding.
	// AddShardedLRCs fills these in; set them directly only when
	// assembling a shard tier by hand.
	ShardRing *ring.Ring
	ShardSelf string

	// IdleTimeout reaps connections idle for this long; zero disables.
	IdleTimeout time.Duration
	// SlowOpThreshold logs and counts dispatches at/above this duration;
	// zero disables.
	SlowOpThreshold time.Duration
	// StatsLogInterval emits periodic telemetry summaries; zero disables.
	StatsLogInterval time.Duration
	// Logger receives server diagnostics and telemetry summaries.
	Logger *slog.Logger
}

// Node is one running server in a deployment.
type Node struct {
	Name string
	URL  string

	Server *server.Server
	LRC    *lrc.Service
	RLI    *rli.Service

	// LRCEngine and RLIEngine are the per-role storage engines (nil when
	// the role is absent; RLIEngine is nil for Bloom-only RLIs too — it is
	// created lazily with the role).
	LRCEngine *storage.Engine
	RLIEngine *storage.Engine
	// Device is the simulated disk shared by this node's engines.
	Device *disk.Device

	net      netsim.Profile
	faults   *netsim.Faults
	listener net.Listener
	dep      *Deployment
}

// storageStats sums storage-engine and simulated-disk activity across the
// node's engines for the server's stats snapshot.
func (n *Node) storageStats() server.StorageStats {
	var out server.StorageStats
	for _, eng := range []*storage.Engine{n.LRCEngine, n.RLIEngine} {
		if eng == nil {
			continue
		}
		st := eng.Stats()
		out.WALAppends += st.WALAppends
		out.WALFlushes += st.WALFlushes
		out.WALBytes += st.WALBytes
		gc := st.GroupCommit
		out.GroupCommitCommits += gc.Commits
		out.GroupCommitBatches += gc.Batches
		out.GroupCommitSyncsAvoided += gc.SyncsAvoided
		if gc.MaxBatch > out.GroupCommitMaxBatch {
			out.GroupCommitMaxBatch = gc.MaxBatch
		}
		if out.GroupCommitBatchSizes == nil {
			out.GroupCommitBatchSizes = make([]int64, len(gc.BatchSizes))
		}
		for i, n := range gc.BatchSizes {
			out.GroupCommitBatchSizes[i] += n
		}
		for _, ts := range st.Tables {
			out.LatchWaits += ts.LatchWaits
			out.LatchWaitNS += ts.LatchWaitNS
		}
		sn := st.Snapshots
		if epoch := int64(sn.Epoch); epoch > out.SnapshotEpoch {
			out.SnapshotEpoch = epoch
		}
		out.SnapshotsTaken += sn.Taken
		out.VersionsPublished += sn.Published
		out.SnapshotsPinned += sn.Pinned
		if sn.OldestPinned != 0 {
			if out.SnapshotOldestPinned == 0 || int64(sn.OldestPinned) < out.SnapshotOldestPinned {
				out.SnapshotOldestPinned = int64(sn.OldestPinned)
			}
		}
		if sn.OldestPinAgeNS > out.SnapshotOldestPinAgeNS {
			out.SnapshotOldestPinAgeNS = sn.OldestPinAgeNS
		}
	}
	if n.Device != nil {
		out.DeadTupleVisits = n.Device.Stats().DeadVisits
	}
	return out
}

// Addr returns the TCP address if the node listens, else "".
func (n *Node) Addr() string {
	if n.listener == nil {
		return ""
	}
	return n.listener.Addr().String()
}

// Deployment is a set of RLS servers plus the wiring to reach them.
type Deployment struct {
	mu    sync.Mutex
	nodes map[string]*Node // by name
	byURL map[string]*Node
}

// NewDeployment returns an empty deployment.
func NewDeployment() *Deployment {
	return &Deployment{
		nodes: make(map[string]*Node),
		byURL: make(map[string]*Node),
	}
}

// AddServer builds and starts a server per the spec.
func (d *Deployment) AddServer(spec ServerSpec) (*Node, error) {
	if spec.Name == "" {
		return nil, errors.New("core: ServerSpec.Name is required")
	}
	if !spec.LRC && !spec.RLI && spec.Members == nil {
		return nil, fmt.Errorf("core: server %s needs at least one role", spec.Name)
	}
	d.mu.Lock()
	if _, dup := d.nodes[spec.Name]; dup {
		d.mu.Unlock()
		return nil, fmt.Errorf("core: duplicate server name %q", spec.Name)
	}
	d.mu.Unlock()

	diskParams := disk.DefaultParams()
	if spec.Disk != nil {
		diskParams = *spec.Disk
	}
	if spec.Clock != nil && diskParams.Clock == nil {
		diskParams.Clock = spec.Clock
	}
	device := disk.New(diskParams)
	node := &Node{
		Name:   spec.Name,
		URL:    "rls://" + spec.Name,
		Device: device,
		net:    spec.Net,
		faults: spec.Faults,
		dep:    d,
	}

	engineFor := func(suffix string) (*storage.Engine, error) {
		opts := storage.Options{
			Personality:   spec.Personality,
			FlushOnCommit: spec.FlushOnCommit,
			Device:        device,
			Clock:         spec.Clock,
		}
		if spec.DataDir == "" {
			return storage.OpenMemory(opts), nil
		}
		return storage.Open(spec.DataDir+"/"+suffix, opts)
	}

	cleanup := func() {
		if node.LRC != nil {
			node.LRC.Close()
		}
		if node.RLI != nil {
			node.RLI.Close()
		}
		if node.LRCEngine != nil {
			node.LRCEngine.Close()
		}
		if node.RLIEngine != nil {
			node.RLIEngine.Close()
		}
	}

	if spec.LRC {
		eng, err := engineFor("lrc")
		if err != nil {
			return nil, err
		}
		node.LRCEngine = eng
		var db *rdb.LRCDB
		if len(eng.Stats().Tables) > 0 {
			db, err = rdb.OpenLRCDB(eng) // reopened persistent database
		} else {
			db, err = rdb.NewLRCDB(eng)
		}
		if err != nil {
			cleanup()
			return nil, err
		}
		svc, err := lrc.New(context.Background(), lrc.Config{
			URL:                node.URL,
			DB:                 db,
			Dial:               d.updaterDialer(spec.SSConns, spec.SSWindow),
			Clock:              spec.Clock,
			ImmediateMode:      spec.ImmediateMode,
			ImmediateInterval:  spec.ImmediateInterval,
			ImmediateThreshold: spec.ImmediateThreshold,
			FullInterval:       spec.FullInterval,
			FullBatch:          spec.FullBatch,
			BloomSizeHint:      spec.BloomSizeHint,
			UpdateWindow:       spec.SSWindow,
			Backoff:            spec.SSBackoff,
			FailThreshold:      spec.SSFailThreshold,
			BreakerSeed:        spec.SSBreakerSeed,
			ShardRing:          spec.ShardRing,
			ShardSelf:          spec.ShardSelf,
		})
		if err != nil {
			cleanup()
			return nil, err
		}
		node.LRC = svc
		svc.Start()
	}
	if spec.RLI {
		eng, err := engineFor("rli")
		if err != nil {
			cleanup()
			return nil, err
		}
		node.RLIEngine = eng
		var db *rdb.RLIDB
		if len(eng.Stats().Tables) > 0 {
			db, err = rdb.OpenRLIDB(eng) // reopened persistent database
		} else {
			db, err = rdb.NewRLIDB(eng)
		}
		if err != nil {
			cleanup()
			return nil, err
		}
		svc, err := rli.New(rli.Config{
			URL:            node.URL,
			DB:             db,
			Clock:          spec.Clock,
			Timeout:        spec.RLITimeout,
			ExpireInterval: spec.RLIExpireInterval,
		})
		if err != nil {
			cleanup()
			return nil, err
		}
		node.RLI = svc
		svc.Start()
	}

	srv, err := server.New(server.Config{
		URL:              node.URL,
		LRC:              node.LRC,
		RLI:              node.RLI,
		Members:          spec.Members,
		Auth:             spec.Auth,
		Clock:            spec.Clock,
		Logger:           spec.Logger,
		IdleTimeout:      spec.IdleTimeout,
		SlowOpThreshold:  spec.SlowOpThreshold,
		StatsLogInterval: spec.StatsLogInterval,
		StorageStats:     node.storageStats,
		MaxInFlight:      spec.MaxInFlight,
	})
	if err != nil {
		cleanup()
		return nil, err
	}
	node.Server = srv

	if spec.Listen || spec.ListenAddr != "" {
		addr := spec.ListenAddr
		if addr == "" {
			addr = "127.0.0.1:0"
		}
		l, err := net.Listen("tcp", addr)
		if err != nil {
			cleanup()
			return nil, err
		}
		node.listener = l
		go func() {
			// Serve returns nil on clean shutdown; anything else means the
			// listener died under us and deserves a log line.
			if err := srv.Serve(netsim.WrapListener(l, spec.Net)); err != nil {
				logger := spec.Logger
				if logger == nil {
					logger = slog.Default()
				}
				logger.Warn("node listener failed", "node", spec.Name, "err", err)
			}
		}()
	}

	d.mu.Lock()
	d.nodes[spec.Name] = node
	d.byURL[node.URL] = node
	d.mu.Unlock()
	return node, nil
}

// Nodes returns every server in the deployment, sorted by name.
func (d *Deployment) Nodes() []*Node {
	d.mu.Lock()
	out := make([]*Node, 0, len(d.nodes))
	for _, n := range d.nodes {
		out = append(out, n)
	}
	d.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Node returns a server by name.
func (d *Deployment) Node(name string) (*Node, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, ok := d.nodes[name]
	return n, ok
}

// dialNode opens a transport to the node: an in-process shaped pipe,
// subject to the node's fault-injection layer when one is configured.
func (d *Deployment) dialNode(n *Node) (net.Conn, error) {
	clientEnd, serverEnd := netsim.Pipe(n.net)
	go n.Server.ServeConn(serverEnd)
	if n.faults != nil {
		return n.faults.Wrap(clientEnd), nil
	}
	return clientEnd, nil
}

// resolve finds a node by deployment URL.
func (d *Deployment) resolve(url string) (*Node, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n, ok := d.byURL[url]; ok {
		return n, nil
	}
	return nil, fmt.Errorf("core: no server with url %q in deployment", url)
}

// updaterDialer lets LRC services reach RLI nodes by URL for soft state
// updates. With conns > 1 each dial opens a pipelined connection pool; the
// window sizes the per-connection in-flight cap to match the LRC's
// soft-state update window.
func (d *Deployment) updaterDialer(conns, window int) lrc.Dialer {
	return func(ctx context.Context, url string) (lrc.Updater, error) {
		n, err := d.resolve(url)
		if err != nil {
			return nil, err
		}
		opts := client.Options{
			Dialer: func() (net.Conn, error) { return d.dialNode(n) },
		}
		if window > 1 {
			opts.MaxInFlight = window
		}
		if conns > 1 {
			return client.NewPool(ctx, opts, conns)
		}
		return client.Dial(ctx, opts)
	}
}

// DialOptions carries client identity and pipelining for Dial.
type DialOptions struct {
	DN    string
	Token string
	// MaxInFlight caps the client's concurrently outstanding requests per
	// connection; 0 leaves the client uncapped (lock-step callers never
	// notice either way — the cap only matters under concurrent calls).
	MaxInFlight int
}

// Dial opens a client to the named server over the in-process transport.
func (d *Deployment) Dial(name string, opts ...DialOptions) (*client.Client, error) {
	d.mu.Lock()
	n, ok := d.nodes[name]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no server named %q", name)
	}
	var o DialOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return client.Dial(context.Background(), client.Options{
		DN:          o.DN,
		Token:       o.Token,
		MaxInFlight: o.MaxInFlight,
		Dialer:      func() (net.Conn, error) { return d.dialNode(n) },
	})
}

// DialReliable opens a retrying client to the named server over the
// in-process transport: idempotent operations (queries, diagnostics) are
// retried with jittered exponential backoff and automatic redial per the
// retry options — the client-side half of the failure model the chaos
// harness exercises.
func (d *Deployment) DialReliable(name string, retry client.RetryOptions, opts ...DialOptions) (*client.Reliable, error) {
	d.mu.Lock()
	n, ok := d.nodes[name]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no server named %q", name)
	}
	var o DialOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return client.NewReliable(client.Options{
		DN:          o.DN,
		Token:       o.Token,
		MaxInFlight: o.MaxInFlight,
		Dialer:      func() (net.Conn, error) { return d.dialNode(n) },
	}, retry), nil
}

// DialTCP opens a client over the node's TCP listener (shaped client-side
// with the node's profile, matching the server-side shaping).
func (d *Deployment) DialTCP(name string, opts ...DialOptions) (*client.Client, error) {
	d.mu.Lock()
	n, ok := d.nodes[name]
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no server named %q", name)
	}
	if n.listener == nil {
		return nil, fmt.Errorf("core: server %q has no TCP listener", name)
	}
	var o DialOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	addr := n.listener.Addr().String()
	return client.Dial(context.Background(), client.Options{
		DN:          o.DN,
		Token:       o.Token,
		MaxInFlight: o.MaxInFlight,
		Dialer: func() (net.Conn, error) {
			raw, err := net.Dial("tcp", addr)
			if err != nil {
				return nil, err
			}
			return netsim.Wrap(raw, n.net), nil
		},
	})
}

// DialFailover opens a replica-aware client over the named servers: reads
// try healthy replicas first (per-replica circuit breakers steer the order)
// and fail over on transport errors, retryable statuses, and not-found —
// the read side of a replicated RLI group. The breaker configuration uses
// backoff defaults; replica breaker seeds derive from the name list order.
func (d *Deployment) DialFailover(names ...string) (*client.Failover, error) {
	if len(names) == 0 {
		return nil, errors.New("core: DialFailover needs at least one server name")
	}
	specs := make([]client.ReplicaSpec, 0, len(names))
	for _, name := range names {
		d.mu.Lock()
		n, ok := d.nodes[name]
		d.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("core: no server named %q", name)
		}
		node := n
		specs = append(specs, client.ReplicaSpec{
			Name: name,
			Opts: client.Options{
				Dialer: func() (net.Conn, error) { return d.dialNode(node) },
			},
		})
	}
	return client.NewFailover(client.FailoverOptions{Replicas: specs})
}

// DialURL opens a client to the server with the given deployment URL
// ("rls://<name>") over the in-process transport. Membership agents use
// this as their seed dialer: client.Client satisfies membership.MemberClient.
func (d *Deployment) DialURL(ctx context.Context, url string) (*client.Client, error) {
	n, err := d.resolve(url)
	if err != nil {
		return nil, err
	}
	return client.Dial(ctx, client.Options{
		Dialer: func() (net.Conn, error) { return d.dialNode(n) },
	})
}

// BootstrapStandby warm-starts the named standby RLI from a live peer
// replica: it pulls the peer's per-LRC Bloom snapshot and installs it into
// the standby, so the standby answers (possibly stale) queries immediately
// instead of waiting out a full soft-state cycle. The next incremental or
// full update from each LRC then freshens the imported state in place.
// Returns how many per-LRC filters were installed.
func (d *Deployment) BootstrapStandby(ctx context.Context, standbyName, peerName string) (int, error) {
	standby, ok := d.Node(standbyName)
	if !ok || standby.RLI == nil {
		return 0, fmt.Errorf("core: %q is not an RLI in this deployment", standbyName)
	}
	peer, ok := d.Node(peerName)
	if !ok || peer.RLI == nil {
		return 0, fmt.Errorf("core: %q is not an RLI in this deployment", peerName)
	}
	c, err := d.Dial(peerName)
	if err != nil {
		return 0, err
	}
	defer c.Close()
	entries, err := c.RLISnapshot(ctx)
	if err != nil {
		return 0, fmt.Errorf("core: snapshot pull from %q: %w", peerName, err)
	}
	return standby.RLI.ImportSnapshot(ctx, entries)
}

// Connect registers RLI update targets: the named LRC starts sending soft
// state updates to the named RLI, either uncompressed or Bloom-compressed,
// optionally partitioned by the regular expressions.
func (d *Deployment) Connect(lrcName, rliName string, bloomUpdates bool, patterns ...string) error {
	lnode, ok := d.Node(lrcName)
	if !ok || lnode.LRC == nil {
		return fmt.Errorf("core: %q is not an LRC in this deployment", lrcName)
	}
	rnode, ok := d.Node(rliName)
	if !ok || rnode.RLI == nil {
		return fmt.Errorf("core: %q is not an RLI in this deployment", rliName)
	}
	return lnode.LRC.AddRLITarget(context.Background(), wire.RLITarget{
		URL:      rnode.URL,
		Bloom:    bloomUpdates,
		Patterns: patterns,
	})
}

// ConnectRLI wires the hierarchical-RLI extension (paper §7): the child RLI
// forwards its aggregated state — per-LRC full updates and Bloom filters —
// to the parent RLI, so queries at the parent cover everything registered
// below the child.
func (d *Deployment) ConnectRLI(childName, parentName string) error {
	child, ok := d.Node(childName)
	if !ok || child.RLI == nil {
		return fmt.Errorf("core: %q is not an RLI in this deployment", childName)
	}
	parent, ok := d.Node(parentName)
	if !ok || parent.RLI == nil {
		return fmt.Errorf("core: %q is not an RLI in this deployment", parentName)
	}
	child.RLI.ConfigureForwarding(func(ctx context.Context, url string) (rli.Updater, error) {
		n, err := d.resolve(url)
		if err != nil {
			return nil, err
		}
		return client.Dial(ctx, client.Options{
			Dialer: func() (net.Conn, error) { return d.dialNode(n) },
		})
	}, 0)
	return child.RLI.AddParent(parent.URL)
}

// Close shuts down every server and engine.
func (d *Deployment) Close() {
	d.mu.Lock()
	nodes := make([]*Node, 0, len(d.nodes))
	for _, n := range d.nodes {
		nodes = append(nodes, n)
	}
	d.mu.Unlock()
	for _, n := range nodes {
		if n.listener != nil {
			n.listener.Close()
		}
		n.Server.Close()
		if n.LRC != nil {
			n.LRC.Close()
		}
		if n.RLI != nil {
			n.RLI.Close()
		}
		if n.LRCEngine != nil {
			n.LRCEngine.Close()
		}
		if n.RLIEngine != nil {
			n.RLIEngine.Close()
		}
	}
}
