package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/client"
	"repro/internal/disk"
	"repro/internal/wire"
)

func newShardTier(t *testing.T, shards int) (*Deployment, *ShardTier) {
	t.Helper()
	d := NewDeployment()
	t.Cleanup(d.Close)
	if _, err := d.AddServer(fastSpec("rli", false, true)); err != nil {
		t.Fatal(err)
	}
	fast := disk.Fast()
	tier, err := d.AddShardedLRCs(ShardedLRCSpec{
		Prefix: "shard",
		Shards: shards,
		Base:   ServerSpec{Disk: &fast},
		RLIs:   []string{"rli"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, tier
}

// TestShardedTierEndToEnd is the full two-step discovery protocol over a
// sharded tier: register through the router, push soft state, and check
// the RLI names the one shard that owns each name — the index stays
// exactly as correct as against a flat deployment.
func TestShardedTierEndToEnd(t *testing.T) {
	ctx := context.Background()
	d, tier := newShardTier(t, 4)
	r, err := tier.DialRouter(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const n = 40
	var mappings []wire.Mapping
	for i := 0; i < n; i++ {
		mappings = append(mappings, wire.Mapping{
			Logical: fmt.Sprintf("lfn://tier/file-%d", i),
			Target:  fmt.Sprintf("gsiftp://site/file-%d", i),
		})
	}
	fails, err := r.BulkCreate(ctx, mappings)
	if err != nil || len(fails) != 0 {
		t.Fatalf("bulk create = %v, %v", fails, err)
	}

	for _, node := range tier.Nodes {
		for _, res := range node.LRC.ForceUpdate(ctx) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
		}
	}

	rc, err := d.Dial("rli")
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	for i := 0; i < n; i++ {
		lfn := fmt.Sprintf("lfn://tier/file-%d", i)
		lrcs, err := rc.RLIQuery(ctx, lfn)
		if err != nil {
			t.Fatalf("RLI query %s: %v", lfn, err)
		}
		want := "rls://" + tier.Ring.Owner(lfn)
		if len(lrcs) != 1 || lrcs[0] != want {
			t.Fatalf("RLI answer for %s = %v, want [%s]", lfn, lrcs, want)
		}
		// Step two: resolve at the owner through the router.
		targets, err := r.GetTargets(ctx, lfn)
		if err != nil || len(targets) != 1 {
			t.Fatalf("resolve %s = %v, %v", lfn, targets, err)
		}
	}
}

// TestShardedTierRejectsMisroutedWrite: the server side re-checks ring
// ownership, so a client that bypasses the router cannot corrupt the
// partition invariant.
func TestShardedTierRejectsMisroutedWrite(t *testing.T) {
	ctx := context.Background()
	d, tier := newShardTier(t, 3)
	lfn := "lfn://misroute/file-1"
	owner := tier.Ring.Owner(lfn)
	var wrong string
	for _, n := range tier.Names {
		if n != owner {
			wrong = n
			break
		}
	}
	c, err := d.Dial(wrong)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateMapping(ctx, lfn, "pfn://x"); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("misrouted create on %s = %v, want ErrBadRequest (owner %s)", wrong, err, owner)
	}
}

// TestShardedTierWildcardThroughRouter: scatter-gather over the real
// tier merges partial answers from every shard.
func TestShardedTierWildcardThroughRouter(t *testing.T) {
	ctx := context.Background()
	_, tier := newShardTier(t, 3)
	r, err := tier.DialRouter(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	const n = 30
	for i := 0; i < n; i++ {
		lfn := fmt.Sprintf("lfn://wild/file-%d", i)
		if err := r.CreateMapping(ctx, lfn, "pfn://t"); err != nil {
			t.Fatal(err)
		}
	}
	rows, degraded, err := r.WildcardTargets(ctx, "lfn://wild/*")
	if err != nil || degraded {
		t.Fatalf("wildcard = err=%v degraded=%v", err, degraded)
	}
	if len(rows) != n {
		t.Fatalf("wildcard rows = %d, want %d", len(rows), n)
	}
	// Reverse query scatters too: every shard may hold mappings to the
	// shared target.
	logicals, degraded, err := r.GetLogicals(ctx, "pfn://t")
	if err != nil || degraded || len(logicals) != n {
		t.Fatalf("reverse = %d logicals, degraded=%v, err=%v", len(logicals), degraded, err)
	}
}
