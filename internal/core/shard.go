package core

import (
	"context"
	"errors"
	"fmt"
	"net"

	"repro/internal/backoff"
	"repro/internal/client"
	"repro/internal/ring"
)

// Sharded LRC tier assembly: the deployment-level constructor that
// turns N ServerSpecs into a consistent-hash-partitioned catalog. Each
// shard is an ordinary LRC owning the ring slice its name hashes to;
// every shard updates the same RLIs under its own URL, so RLI answers
// ({LFN → LRC URL}) remain exactly as correct as in the flat
// deployment — the index maps each name to the one shard that
// registered it.

// ShardedLRCSpec describes a tier of shard LRCs to add to a deployment.
type ShardedLRCSpec struct {
	// Prefix names the shards: <Prefix>0 .. <Prefix>N-1. Default "lrc".
	Prefix string
	// Shards is the shard count (>= 1).
	Shards int
	// VNodes is the ring's virtual-node count per shard; 0 uses
	// ring.DefaultVNodes. Clients must build their ring with the same
	// value.
	VNodes int
	// Base is the template ServerSpec applied to every shard. Name,
	// LRC, ShardRing and ShardSelf are overwritten per shard; a
	// non-empty DataDir becomes a per-shard subdirectory.
	Base ServerSpec
	// RLIs names the RLI nodes every shard sends soft-state updates to
	// (they must already exist in the deployment).
	RLIs []string
	// Bloom selects Bloom-compressed updates to those RLIs.
	Bloom bool
}

// ShardTier is a running sharded LRC tier within a deployment.
type ShardTier struct {
	// Names lists the shard server names in ring order.
	Names []string
	// Ring is the tier's routing ring, shared with every shard's
	// ownership check.
	Ring *ring.Ring
	// Nodes holds the shard nodes, parallel to Names.
	Nodes []*Node

	dep *Deployment
}

// AddShardedLRCs creates Shards LRC servers sharing one consistent-hash
// ring and wires each to the named RLIs. The spec's Base carries the
// usual per-server tuning (personality, disk, net shaping, pipelining).
func (d *Deployment) AddShardedLRCs(spec ShardedLRCSpec) (*ShardTier, error) {
	if spec.Shards < 1 {
		return nil, errors.New("core: ShardedLRCSpec.Shards must be >= 1")
	}
	prefix := spec.Prefix
	if prefix == "" {
		prefix = "lrc"
	}
	names := make([]string, spec.Shards)
	for i := range names {
		names[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	rg, err := ring.New(names, spec.VNodes)
	if err != nil {
		return nil, fmt.Errorf("core: shard ring: %w", err)
	}
	tier := &ShardTier{Ring: rg, dep: d}
	for _, name := range rg.Nodes() {
		ss := spec.Base
		ss.Name = name
		ss.LRC = true
		ss.RLI = false
		ss.ShardRing = rg
		ss.ShardSelf = name
		if ss.DataDir != "" {
			ss.DataDir = spec.Base.DataDir + "/" + name
		}
		node, err := d.AddServer(ss)
		if err != nil {
			return nil, fmt.Errorf("core: shard %s: %w", name, err)
		}
		tier.Names = append(tier.Names, name)
		tier.Nodes = append(tier.Nodes, node)
		for _, rli := range spec.RLIs {
			if err := d.Connect(name, rli, spec.Bloom); err != nil {
				return nil, fmt.Errorf("core: shard %s -> rli %s: %w", name, rli, err)
			}
		}
	}
	return tier, nil
}

// RouterOptions tunes DialRouter.
type RouterOptions struct {
	// DN and Token are the client identity (open mode when empty).
	DN    string
	Token string
	// PoolSize is the connection count per shard; 0 means 1.
	PoolSize int
	// MaxInFlight caps outstanding RPCs per connection; 0 = uncapped.
	MaxInFlight int
	// MaxFanout bounds scatter-gather concurrency; 0 = router default.
	MaxFanout int
	// Breaker configures the router's per-shard circuit breakers.
	Breaker backoff.BreakerConfig
}

// DialRouter opens a shard-aware client over the tier: one pool per
// shard on the in-process transport, routing by the tier's ring.
func (t *ShardTier) DialRouter(ctx context.Context, opts ...RouterOptions) (*client.Router, error) {
	var o RouterOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	shards := make([]client.ShardSpec, 0, len(t.Nodes))
	for i, n := range t.Nodes {
		n := n
		shards = append(shards, client.ShardSpec{
			Name: t.Names[i],
			Opts: client.Options{
				DN:          o.DN,
				Token:       o.Token,
				MaxInFlight: o.MaxInFlight,
				Dialer:      func() (net.Conn, error) { return t.dep.dialNode(n) },
			},
		})
	}
	return client.NewRouter(ctx, client.RouterOptions{
		Shards:    shards,
		PoolSize:  o.PoolSize,
		VNodes:    t.Ring.VNodes(),
		MaxFanout: o.MaxFanout,
		Breaker:   o.Breaker,
	})
}
