package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/auth"
	"repro/internal/client"
	"repro/internal/disk"
	"repro/internal/wire"
)

func fastSpec(name string, lrcRole, rliRole bool) ServerSpec {
	d := disk.Fast()
	return ServerSpec{Name: name, LRC: lrcRole, RLI: rliRole, Disk: &d}
}

func newPair(t *testing.T) (*Deployment, *client.Client, *client.Client) {
	t.Helper()
	d := NewDeployment()
	t.Cleanup(d.Close)
	if _, err := d.AddServer(fastSpec("lrc1", true, false)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddServer(fastSpec("rli1", false, true)); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("lrc1", "rli1", false); err != nil {
		t.Fatal(err)
	}
	lc, err := d.Dial("lrc1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { lc.Close() })
	rc, err := d.Dial("rli1")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	return d, lc, rc
}

func TestEndToEndRegisterAndDiscover(t *testing.T) {
	ctx := context.Background()
	d, lc, rc := newPair(t)

	// Register replicas at the LRC.
	if err := lc.CreateMapping(ctx, "lfn://exp/f1", "gsiftp://siteA/f1"); err != nil {
		t.Fatal(err)
	}
	if err := lc.AddMapping(ctx, "lfn://exp/f1", "gsiftp://siteB/f1"); err != nil {
		t.Fatal(err)
	}

	// Push soft state LRC -> RLI.
	node, _ := d.Node("lrc1")
	for _, res := range node.LRC.ForceUpdate(ctx) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}

	// Discover via the RLI, then resolve at the LRC — the paper's two-step
	// client protocol.
	lrcs, err := rc.RLIQuery(ctx, "lfn://exp/f1")
	if err != nil {
		t.Fatal(err)
	}
	if len(lrcs) != 1 || lrcs[0] != "rls://lrc1" {
		t.Fatalf("RLI query = %v", lrcs)
	}
	targets, err := lc.GetTargets(ctx, "lfn://exp/f1")
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 2 {
		t.Fatalf("targets = %v", targets)
	}
}

func TestEndToEndPing(t *testing.T) {
	ctx := context.Background()
	_, lc, rc := newPair(t)
	if err := lc.Ping(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rc.Ping(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestServerInfo(t *testing.T) {
	ctx := context.Background()
	_, lc, rc := newPair(t)
	lc.CreateMapping(ctx, "lfn://a", "pfn://a")
	info, err := lc.ServerInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Role != "lrc" || info.LogicalNames != 1 || info.Mappings != 1 {
		t.Fatalf("lrc info = %+v", info)
	}
	rinfo, err := rc.ServerInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.Role != "rli" {
		t.Fatalf("rli info = %+v", rinfo)
	}
}

func TestRoleEnforcement(t *testing.T) {
	ctx := context.Background()
	_, lc, rc := newPair(t)
	// LRC ops on an RLI-only server.
	if err := rc.CreateMapping(ctx, "lfn://x", "pfn://x"); !errors.Is(err, client.ErrUnsupported) {
		t.Fatalf("LRC op on RLI = %v", err)
	}
	// RLI ops on an LRC-only server.
	if _, err := lc.RLIQuery(ctx, "lfn://x"); !errors.Is(err, client.ErrUnsupported) {
		t.Fatalf("RLI op on LRC = %v", err)
	}
}

func TestCombinedRoleServer(t *testing.T) {
	ctx := context.Background()
	d := NewDeployment()
	defer d.Close()
	if _, err := d.AddServer(fastSpec("both", true, true)); err != nil {
		t.Fatal(err)
	}
	// Self-update: the LRC half updates the RLI half, the ESG deployment
	// pattern ("four RLS servers that function as both LRCs and RLIs").
	if err := d.Connect("both", "both", false); err != nil {
		t.Fatal(err)
	}
	c, err := d.Dial("both")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateMapping(ctx, "lfn://x", "pfn://x"); err != nil {
		t.Fatal(err)
	}
	node, _ := d.Node("both")
	for _, res := range node.LRC.ForceUpdate(ctx) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	lrcs, err := c.RLIQuery(ctx, "lfn://x")
	if err != nil || len(lrcs) != 1 {
		t.Fatalf("self-indexed query = %v, %v", lrcs, err)
	}
	info, _ := c.ServerInfo(ctx)
	if info.Role != "lrc+rli" {
		t.Fatalf("role = %q", info.Role)
	}
}

func TestErrorMapping(t *testing.T) {
	ctx := context.Background()
	_, lc, _ := newPair(t)
	lc.CreateMapping(ctx, "lfn://dup", "pfn://1")
	if err := lc.CreateMapping(ctx, "lfn://dup", "pfn://2"); !errors.Is(err, client.ErrExists) {
		t.Fatalf("duplicate = %v", err)
	}
	if _, err := lc.GetTargets(ctx, "lfn://missing"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("missing = %v", err)
	}
	if err := lc.CreateMapping(ctx, "", "pfn://x"); !errors.Is(err, client.ErrBadRequest) {
		t.Fatalf("empty = %v", err)
	}
}

func TestBulkOperationsOverWire(t *testing.T) {
	ctx := context.Background()
	_, lc, _ := newPair(t)
	var ms []wire.Mapping
	for i := 0; i < 100; i++ {
		ms = append(ms, wire.Mapping{Logical: fmt.Sprintf("lfn://bulk/%03d", i), Target: fmt.Sprintf("pfn://bulk/%03d", i)})
	}
	failures, err := lc.BulkCreate(ctx, ms)
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 0 {
		t.Fatalf("failures = %+v", failures)
	}
	// Re-creating everything fails per element, not per request.
	failures, err = lc.BulkCreate(ctx, ms[:10])
	if err != nil {
		t.Fatal(err)
	}
	if len(failures) != 10 {
		t.Fatalf("re-create failures = %d, want 10", len(failures))
	}
	results, err := lc.BulkGetTargets(ctx, []string{"lfn://bulk/001", "lfn://nope"})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].Found || results[1].Found {
		t.Fatalf("bulk query results = %+v", results)
	}
	failures, err = lc.BulkDelete(ctx, ms)
	if err != nil || len(failures) != 0 {
		t.Fatalf("bulk delete = %+v, %v", failures, err)
	}
}

func TestWildcardOverWire(t *testing.T) {
	ctx := context.Background()
	_, lc, _ := newPair(t)
	lc.CreateMapping(ctx, "lfn://w/a", "pfn://1")
	lc.CreateMapping(ctx, "lfn://w/b", "pfn://2")
	lc.CreateMapping(ctx, "lfn://z/c", "pfn://3")
	results, err := lc.WildcardTargets(ctx, "lfn://w/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("wildcard results = %+v", results)
	}
}

func TestAttributesOverWire(t *testing.T) {
	ctx := context.Background()
	_, lc, _ := newPair(t)
	lc.CreateMapping(ctx, "lfn://f", "pfn://f")
	if err := lc.DefineAttribute(ctx, "size", wire.ObjTarget, wire.AttrInt); err != nil {
		t.Fatal(err)
	}
	if err := lc.AddAttribute(ctx, "pfn://f", wire.ObjTarget, "size", wire.AttrValue{Type: wire.AttrInt, I: 4096}); err != nil {
		t.Fatal(err)
	}
	attrs, err := lc.GetAttributes(ctx, "pfn://f", wire.ObjTarget, nil)
	if err != nil || len(attrs) != 1 || attrs[0].Value.I != 4096 {
		t.Fatalf("attrs = %+v, %v", attrs, err)
	}
	hits, err := lc.SearchAttribute(ctx, "size", wire.ObjTarget, wire.CmpGE, wire.AttrValue{Type: wire.AttrInt, I: 1000})
	if err != nil || len(hits) != 1 {
		t.Fatalf("search = %+v, %v", hits, err)
	}
	if err := lc.ModifyAttribute(ctx, "pfn://f", wire.ObjTarget, "size", wire.AttrValue{Type: wire.AttrInt, I: 1}); err != nil {
		t.Fatal(err)
	}
	if err := lc.RemoveAttribute(ctx, "pfn://f", wire.ObjTarget, "size"); err != nil {
		t.Fatal(err)
	}
	if err := lc.UndefineAttribute(ctx, "size", wire.ObjTarget, false); err != nil {
		t.Fatal(err)
	}
}

func TestRLITargetManagementOverWire(t *testing.T) {
	ctx := context.Background()
	d, lc, _ := newPair(t)
	targets, err := lc.ListRLITargets(ctx)
	if err != nil || len(targets) != 1 {
		t.Fatalf("targets = %+v, %v", targets, err)
	}
	// Add a second RLI over the wire and verify updates reach it.
	if _, err := d.AddServer(fastSpec("rli2", false, true)); err != nil {
		t.Fatal(err)
	}
	if err := lc.AddRLITarget(ctx, wire.RLITarget{URL: "rls://rli2", Bloom: true}); err != nil {
		t.Fatal(err)
	}
	lc.CreateMapping(ctx, "lfn://x", "pfn://x")
	node, _ := d.Node("lrc1")
	for _, res := range node.LRC.ForceUpdate(ctx) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	rc2, err := d.Dial("rli2")
	if err != nil {
		t.Fatal(err)
	}
	defer rc2.Close()
	lrcs, err := rc2.RLIQuery(ctx, "lfn://x")
	if err != nil || len(lrcs) != 1 {
		t.Fatalf("rli2 query = %v, %v", lrcs, err)
	}
	if err := lc.RemoveRLITarget(ctx, "rls://rli2"); err != nil {
		t.Fatal(err)
	}
	targets, _ = lc.ListRLITargets(ctx)
	if len(targets) != 1 {
		t.Fatalf("targets after remove = %+v", targets)
	}
}

func TestRLILRCListOverWire(t *testing.T) {
	ctx := context.Background()
	d, lc, rc := newPair(t)
	lc.CreateMapping(ctx, "lfn://x", "pfn://x")
	node, _ := d.Node("lrc1")
	node.LRC.ForceUpdate(ctx)
	lrcs, err := rc.RLILRCList(ctx)
	if err != nil || len(lrcs) != 1 || lrcs[0] != "rls://lrc1" {
		t.Fatalf("LRC list = %v, %v", lrcs, err)
	}
}

func TestStaleRLIAnswerHandledByClient(t *testing.T) {
	ctx := context.Background()
	// §3.2: a client may get a stale RLI answer and must recover by trying
	// the LRCs. Delete the mapping after the update and observe the
	// documented stale-read behaviour.
	d, lc, rc := newPair(t)
	lc.CreateMapping(ctx, "lfn://stale", "pfn://x")
	node, _ := d.Node("lrc1")
	node.LRC.ForceUpdate(ctx)
	lc.DeleteMapping(ctx, "lfn://stale", "pfn://x")

	lrcs, err := rc.RLIQuery(ctx, "lfn://stale")
	if err != nil || len(lrcs) != 1 {
		t.Fatalf("RLI answer = %v, %v (expected stale hit)", lrcs, err)
	}
	// Following the stale pointer yields not-found at the LRC; application
	// recovers by trying other replicas.
	if _, err := lc.GetTargets(ctx, "lfn://stale"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("LRC resolution = %v, want ErrNotFound", err)
	}
}

func TestAuthenticationOverWire(t *testing.T) {
	ctx := context.Background()
	gm := auth.NewGridmap()
	gm.Add("/O=Grid/CN=Writer", "writer")
	gm.Add("/O=Grid/CN=Reader", "reader")
	acl := auth.NewACL()
	acl.Grant("writer", true, auth.PrivLRCRead, auth.PrivLRCWrite)
	acl.Grant("reader", true, auth.PrivLRCRead)
	an := auth.New(auth.Config{Enabled: true, Gridmap: gm, ACL: acl})
	an.RegisterCredential("/O=Grid/CN=Writer", "w-secret")
	an.RegisterCredential("/O=Grid/CN=Reader", "r-secret")

	d := NewDeployment()
	defer d.Close()
	spec := fastSpec("secure", true, false)
	spec.Auth = an
	if _, err := d.AddServer(spec); err != nil {
		t.Fatal(err)
	}

	// Wrong token: handshake fails.
	if _, err := d.Dial("secure", DialOptions{DN: "/O=Grid/CN=Writer", Token: "bad"}); !errors.Is(err, client.ErrDenied) {
		t.Fatalf("bad token = %v", err)
	}
	// Unknown DN: handshake fails.
	if _, err := d.Dial("secure", DialOptions{DN: "/O=Grid/CN=Nobody", Token: "x"}); !errors.Is(err, client.ErrDenied) {
		t.Fatalf("unknown DN = %v", err)
	}

	writer, err := d.Dial("secure", DialOptions{DN: "/O=Grid/CN=Writer", Token: "w-secret"})
	if err != nil {
		t.Fatal(err)
	}
	defer writer.Close()
	if err := writer.CreateMapping(ctx, "lfn://x", "pfn://x"); err != nil {
		t.Fatal(err)
	}

	reader, err := d.Dial("secure", DialOptions{DN: "/O=Grid/CN=Reader", Token: "r-secret"})
	if err != nil {
		t.Fatal(err)
	}
	defer reader.Close()
	if _, err := reader.GetTargets(ctx, "lfn://x"); err != nil {
		t.Fatalf("reader query = %v", err)
	}
	if err := reader.CreateMapping(ctx, "lfn://y", "pfn://y"); !errors.Is(err, client.ErrDenied) {
		t.Fatalf("reader write = %v, want ErrDenied", err)
	}
}

func TestTCPTransport(t *testing.T) {
	ctx := context.Background()
	d := NewDeployment()
	defer d.Close()
	spec := fastSpec("tcp-lrc", true, false)
	spec.Listen = true
	node, err := d.AddServer(spec)
	if err != nil {
		t.Fatal(err)
	}
	if node.Addr() == "" {
		t.Fatal("no TCP address")
	}
	c, err := d.DialTCP("tcp-lrc")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.CreateMapping(ctx, "lfn://tcp", "pfn://tcp"); err != nil {
		t.Fatal(err)
	}
	targets, err := c.GetTargets(ctx, "lfn://tcp")
	if err != nil || len(targets) != 1 {
		t.Fatalf("over TCP: %v, %v", targets, err)
	}
}

func TestConcurrentClients(t *testing.T) {
	ctx := context.Background()
	d := NewDeployment()
	defer d.Close()
	if _, err := d.AddServer(fastSpec("lrc1", true, false)); err != nil {
		t.Fatal(err)
	}
	const clients = 8
	const perClient = 50
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := d.Dial("lrc1")
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < perClient; i++ {
				lfn := fmt.Sprintf("lfn://c%d/%03d", g, i)
				if err := c.CreateMapping(ctx, lfn, "pfn://"+lfn); err != nil {
					errs <- err
					return
				}
				if _, err := c.GetTargets(ctx, lfn); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c, _ := d.Dial("lrc1")
	defer c.Close()
	info, err := c.ServerInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.LogicalNames != clients*perClient {
		t.Fatalf("LogicalNames = %d, want %d", info.LogicalNames, clients*perClient)
	}
}

func TestImmediateModeEndToEnd(t *testing.T) {
	ctx := context.Background()
	d := NewDeployment()
	defer d.Close()
	spec := fastSpec("lrc1", true, false)
	spec.ImmediateMode = true
	spec.ImmediateInterval = time.Hour // rely on the threshold
	spec.ImmediateThreshold = 1
	if _, err := d.AddServer(spec); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddServer(fastSpec("rli1", false, true)); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("lrc1", "rli1", false); err != nil {
		t.Fatal(err)
	}
	node, _ := d.Node("lrc1")
	node.LRC.Start()
	lc, _ := d.Dial("lrc1")
	defer lc.Close()
	rc, _ := d.Dial("rli1")
	defer rc.Close()

	if err := lc.CreateMapping(ctx, "lfn://immediate", "pfn://x"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if lrcs, err := rc.RLIQuery(ctx, "lfn://immediate"); err == nil && len(lrcs) == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("immediate-mode update never reached the RLI")
}

func TestPartitionedDeployment(t *testing.T) {
	ctx := context.Background()
	d := NewDeployment()
	defer d.Close()
	d.AddServer(fastSpec("lrc1", true, false))
	d.AddServer(fastSpec("rli-ligo", false, true))
	d.AddServer(fastSpec("rli-esg", false, true))
	if err := d.Connect("lrc1", "rli-ligo", false, `^lfn://ligo/`); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("lrc1", "rli-esg", false, `^lfn://esg/`); err != nil {
		t.Fatal(err)
	}
	lc, _ := d.Dial("lrc1")
	defer lc.Close()
	lc.CreateMapping(ctx, "lfn://ligo/a", "pfn://1")
	lc.CreateMapping(ctx, "lfn://esg/b", "pfn://2")
	node, _ := d.Node("lrc1")
	for _, res := range node.LRC.ForceUpdate(ctx) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	ligo, _ := d.Dial("rli-ligo")
	defer ligo.Close()
	esg, _ := d.Dial("rli-esg")
	defer esg.Close()
	if _, err := ligo.RLIQuery(ctx, "lfn://ligo/a"); err != nil {
		t.Fatal("partition member missing at rli-ligo")
	}
	if _, err := ligo.RLIQuery(ctx, "lfn://esg/b"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("out-of-partition name at rli-ligo: %v", err)
	}
	if _, err := esg.RLIQuery(ctx, "lfn://esg/b"); err != nil {
		t.Fatal("partition member missing at rli-esg")
	}
}

func TestDeploymentValidation(t *testing.T) {
	d := NewDeployment()
	defer d.Close()
	if _, err := d.AddServer(ServerSpec{Name: "x"}); err == nil {
		t.Fatal("role-less server accepted")
	}
	if _, err := d.AddServer(ServerSpec{LRC: true}); err == nil {
		t.Fatal("nameless server accepted")
	}
	d.AddServer(fastSpec("dup", true, false))
	if _, err := d.AddServer(fastSpec("dup", true, false)); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := d.Dial("ghost"); err == nil {
		t.Fatal("dial of unknown server succeeded")
	}
	if err := d.Connect("ghost", "dup", false); err == nil {
		t.Fatal("connect from unknown LRC accepted")
	}
	if err := d.Connect("dup", "ghost", false); err == nil {
		t.Fatal("connect to unknown RLI accepted")
	}
}

func TestPersistentLRCAcrossDeployments(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	spec := fastSpec("lrc1", true, false)
	spec.DataDir = dir

	d1 := NewDeployment()
	if _, err := d1.AddServer(spec); err != nil {
		t.Fatal(err)
	}
	c1, _ := d1.Dial("lrc1")
	c1.CreateMapping(ctx, "lfn://persistent", "pfn://x")
	c1.Close()
	d1.Close()

	// A second deployment reopening the same directory sees the catalog.
	d2 := NewDeployment()
	defer d2.Close()
	if _, err := d2.AddServer(spec); err != nil {
		t.Fatal(err)
	}
	c2, err := d2.Dial("lrc1")
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	targets, err := c2.GetTargets(ctx, "lfn://persistent")
	if err != nil || len(targets) != 1 {
		t.Fatalf("reopened catalog = %v, %v", targets, err)
	}
	if err := c2.CreateMapping(ctx, "lfn://fresh", "pfn://y"); err != nil {
		t.Fatalf("create after reopen: %v", err)
	}
}

func TestListAttributeDefsOverWire(t *testing.T) {
	ctx := context.Background()
	_, lc, _ := newPair(t)
	if err := lc.DefineAttribute(ctx, "size", wire.ObjTarget, wire.AttrInt); err != nil {
		t.Fatal(err)
	}
	defs, err := lc.ListAttributeDefs(ctx, wire.ObjTarget)
	if err != nil {
		t.Fatal(err)
	}
	if len(defs) != 1 || defs[0].Name != "size" || defs[0].Type != wire.AttrInt {
		t.Fatalf("defs = %+v", defs)
	}
	// Empty result for the other object type.
	defs, err = lc.ListAttributeDefs(ctx, wire.ObjLogical)
	if err != nil || len(defs) != 0 {
		t.Fatalf("logical defs = %+v, %v", defs, err)
	}
}
