package core

import (
	"errors"
	"testing"

	"repro/internal/client"
)

// TestHierarchicalRLIForwarding builds the two-level index of the paper's
// §7: site LRCs update leaf RLIs, leaf RLIs forward to a root RLI, and a
// query at the root locates data registered at any site.
func TestHierarchicalRLIForwarding(t *testing.T) {
	d := NewDeployment()
	defer d.Close()
	for _, name := range []string{"lrc-east", "lrc-west"} {
		if _, err := d.AddServer(fastSpec(name, true, false)); err != nil {
			t.Fatal(err)
		}
	}
	for _, name := range []string{"rli-east", "rli-west", "rli-root"} {
		if _, err := d.AddServer(fastSpec(name, false, true)); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Connect("lrc-east", "rli-east", false); err != nil {
		t.Fatal(err)
	}
	if err := d.Connect("lrc-west", "rli-west", true); err != nil { // west uses Bloom
		t.Fatal(err)
	}
	if err := d.ConnectRLI("rli-east", "rli-root"); err != nil {
		t.Fatal(err)
	}
	if err := d.ConnectRLI("rli-west", "rli-root"); err != nil {
		t.Fatal(err)
	}

	// Register data at each site and propagate both levels.
	ce, _ := d.Dial("lrc-east")
	defer ce.Close()
	cw, _ := d.Dial("lrc-west")
	defer cw.Close()
	if err := ce.CreateMapping(ctx, "lfn://east/data", "pfn://east/data"); err != nil {
		t.Fatal(err)
	}
	if err := cw.CreateMapping(ctx, "lfn://west/data", "pfn://west/data"); err != nil {
		t.Fatal(err)
	}
	for _, lrcName := range []string{"lrc-east", "lrc-west"} {
		node, _ := d.Node(lrcName)
		for _, res := range node.LRC.ForceUpdate(ctx) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
		}
	}
	for _, rliName := range []string{"rli-east", "rli-west"} {
		node, _ := d.Node(rliName)
		for _, res := range node.RLI.ForwardAll(ctx) {
			if res.Err != nil {
				t.Fatalf("forward from %s: %v", rliName, res.Err)
			}
			if res.Sources == 0 {
				t.Fatalf("forward from %s carried no sources: %+v", rliName, res)
			}
		}
	}

	// The root resolves both sites' data to the ORIGINATING LRCs.
	root, _ := d.Dial("rli-root")
	defer root.Close()
	lrcs, err := root.RLIQuery(ctx, "lfn://east/data")
	if err != nil || len(lrcs) != 1 || lrcs[0] != "rls://lrc-east" {
		t.Fatalf("east data at root = %v, %v", lrcs, err)
	}
	lrcs, err = root.RLIQuery(ctx, "lfn://west/data")
	if err != nil || len(lrcs) != 1 || lrcs[0] != "rls://lrc-west" {
		t.Fatalf("west data at root = %v, %v", lrcs, err)
	}
	// The root knows both LRCs even though neither updates it directly.
	all, err := root.RLILRCList(ctx)
	if err != nil || len(all) != 2 {
		t.Fatalf("root LRC list = %v, %v", all, err)
	}
}

func TestConnectRLIValidation(t *testing.T) {
	d := NewDeployment()
	defer d.Close()
	d.AddServer(fastSpec("lrc", true, false))
	d.AddServer(fastSpec("rli", false, true))
	if err := d.ConnectRLI("lrc", "rli"); err == nil {
		t.Fatal("LRC accepted as hierarchy child")
	}
	if err := d.ConnectRLI("rli", "lrc"); err == nil {
		t.Fatal("LRC accepted as hierarchy parent")
	}
	if err := d.ConnectRLI("ghost", "rli"); err == nil {
		t.Fatal("unknown child accepted")
	}
	// Self-loop rejected by the service.
	if err := d.ConnectRLI("rli", "rli"); err == nil {
		t.Fatal("self-parent accepted")
	}
	// Duplicate registration rejected.
	d.AddServer(fastSpec("rli2", false, true))
	if err := d.ConnectRLI("rli", "rli2"); err != nil {
		t.Fatal(err)
	}
	if err := d.ConnectRLI("rli", "rli2"); err == nil {
		t.Fatal("duplicate parent accepted")
	}
	node, _ := d.Node("rli")
	if got := node.RLI.Parents(); len(got) != 1 || got[0] != "rls://rli2" {
		t.Fatalf("Parents = %v", got)
	}
	if err := node.RLI.RemoveParent("rls://rli2"); err != nil {
		t.Fatal(err)
	}
	if err := node.RLI.RemoveParent("rls://rli2"); err == nil {
		t.Fatal("double remove accepted")
	}
}

func TestForwardingSurvivesParentOutage(t *testing.T) {
	d := NewDeployment()
	defer d.Close()
	d.AddServer(fastSpec("lrc", true, false))
	d.AddServer(fastSpec("child", false, true))
	d.AddServer(fastSpec("parent", false, true))
	d.Connect("lrc", "child", false)
	d.ConnectRLI("child", "parent")

	c, _ := d.Dial("lrc")
	defer c.Close()
	c.CreateMapping(ctx, "lfn://x", "pfn://x")
	lnode, _ := d.Node("lrc")
	lnode.LRC.ForceUpdate(ctx)

	// Kill the parent; forwarding must report the error, not hang or panic.
	pnode, _ := d.Node("parent")
	pnode.Server.Close()
	cnode, _ := d.Node("child")
	results := cnode.RLI.ForwardAll(ctx)
	if len(results) != 1 {
		t.Fatalf("results = %+v", results)
	}
	if results[0].Err == nil {
		t.Fatal("forward to dead parent reported success")
	}
	// Child still answers queries.
	cc, _ := d.Dial("child")
	defer cc.Close()
	if _, err := cc.RLIQuery(ctx, "lfn://x"); err != nil {
		t.Fatalf("child query after parent outage: %v", err)
	}
}

func TestThreeLevelHierarchy(t *testing.T) {
	// leaf -> mid -> root: state flows two hops while keeping the original
	// LRC attribution.
	d := NewDeployment()
	defer d.Close()
	d.AddServer(fastSpec("lrc", true, false))
	d.AddServer(fastSpec("leaf", false, true))
	d.AddServer(fastSpec("mid", false, true))
	d.AddServer(fastSpec("root", false, true))
	d.Connect("lrc", "leaf", false)
	d.ConnectRLI("leaf", "mid")
	d.ConnectRLI("mid", "root")

	c, _ := d.Dial("lrc")
	defer c.Close()
	c.CreateMapping(ctx, "lfn://deep", "pfn://deep")
	lnode, _ := d.Node("lrc")
	lnode.LRC.ForceUpdate(ctx)
	for _, name := range []string{"leaf", "mid"} {
		node, _ := d.Node(name)
		for _, res := range node.RLI.ForwardAll(ctx) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
		}
	}
	rc, _ := d.Dial("root")
	defer rc.Close()
	lrcs, err := rc.RLIQuery(ctx, "lfn://deep")
	if err != nil || len(lrcs) != 1 || lrcs[0] != "rls://lrc" {
		t.Fatalf("root resolution = %v, %v", lrcs, err)
	}
}

func TestForwardingBloomOnlyChild(t *testing.T) {
	// A Bloom-only child (no database) forwards its bitmaps upward.
	d := NewDeployment()
	defer d.Close()
	d.AddServer(fastSpec("lrc", true, false))
	d.AddServer(fastSpec("child", false, true))
	d.AddServer(fastSpec("parent", false, true))
	d.Connect("lrc", "child", true) // Bloom updates
	d.ConnectRLI("child", "parent")

	c, _ := d.Dial("lrc")
	defer c.Close()
	c.CreateMapping(ctx, "lfn://bloomy", "pfn://x")
	lnode, _ := d.Node("lrc")
	lnode.LRC.ForceUpdate(ctx)
	cnode, _ := d.Node("child")
	for _, res := range cnode.RLI.ForwardAll(ctx) {
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.Blooms != 1 {
			t.Fatalf("forwarded %d blooms, want 1", res.Blooms)
		}
	}
	pc, _ := d.Dial("parent")
	defer pc.Close()
	lrcs, err := pc.RLIQuery(ctx, "lfn://bloomy")
	if err != nil || len(lrcs) != 1 || lrcs[0] != "rls://lrc" {
		t.Fatalf("parent resolution = %v, %v", lrcs, err)
	}
	// A name that was never registered misses (modulo FP) — check the
	// parent is not just answering everything.
	if _, err := pc.RLIQuery(ctx, "lfn://definitely-not-there-xyz"); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("phantom name resolved: %v", err)
	}
}
