// Package repro's top-level benchmarks exercise the core code path behind
// every table and figure of the paper's evaluation, one benchmark per
// artifact. They use small fixed catalog sizes and cost-free simulated
// disks (except where the disk IS the result, as in Figure 4) so that
// `go test -bench=. -benchmem` finishes quickly; the full parameter sweeps
// with the 2004 device and network models live in `cmd/rls-bench`.
package repro

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bloom"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/storage"
	"repro/internal/workload"
)

const benchCatalog = 10_000

// benchLRC builds a single-LRC deployment preloaded with benchCatalog
// mappings on a cost-free disk.
func benchLRC(b *testing.B, personality storage.Personality) (*core.Deployment, *core.Node, workload.Names) {
	ctx := context.Background()
	b.Helper()
	dep := core.NewDeployment()
	fast := disk.Fast()
	node, err := dep.AddServer(core.ServerSpec{Name: "lrc", LRC: true, Personality: personality, Disk: &fast})
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.Names{Space: "bench"}
	c, err := dep.Dial("lrc")
	if err != nil {
		b.Fatal(err)
	}
	if err := workload.Load(ctx, c, gen, benchCatalog, 1000); err != nil {
		b.Fatal(err)
	}
	c.Close()
	b.Cleanup(dep.Close)
	return dep, node, gen
}

func benchDial(b *testing.B, dep *core.Deployment, name string) *client.Client {
	b.Helper()
	c, err := dep.Dial(name)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	return c
}

// BenchmarkFig4AddFlushDisabled measures the add path with commit flushes
// batched (the paper's recommended configuration).
func BenchmarkFig4AddFlushDisabled(b *testing.B) {
	ctx := context.Background()
	dep, _, _ := benchLRC(b, storage.PersonalityMySQL)
	c := benchDial(b, dep, "lrc")
	gen := workload.Names{Space: "fig4off"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.CreateMapping(ctx, gen.Logical(i), gen.Target(i, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4AddFlushEnabled measures the add path when every commit pays
// a simulated 2004-era disk flush — the other line of Figure 4. Expect
// ~8ms/op.
func BenchmarkFig4AddFlushEnabled(b *testing.B) {
	ctx := context.Background()
	dep := core.NewDeployment()
	defer dep.Close()
	model := disk.DefaultParams()
	node, err := dep.AddServer(core.ServerSpec{Name: "lrc", LRC: true, Disk: &model})
	if err != nil {
		b.Fatal(err)
	}
	node.LRCEngine.SetFlushOnCommit(true)
	c := benchDial(b, dep, "lrc")
	gen := workload.Names{Space: "fig4on"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.CreateMapping(ctx, gen.Logical(i), gen.Target(i, 0)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Query measures the LRC query path.
func BenchmarkFig5Query(b *testing.B) {
	ctx := context.Background()
	dep, _, gen := benchLRC(b, storage.PersonalityMySQL)
	c := benchDial(b, dep, "lrc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GetTargets(ctx, gen.Logical(i * 7919 % benchCatalog)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6ParallelQuery measures query throughput with many requesting
// threads, each on its own connection (the Figure 6 configuration).
func BenchmarkFig6ParallelQuery(b *testing.B) {
	ctx := context.Background()
	dep, _, gen := benchLRC(b, storage.PersonalityMySQL)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		c, err := dep.Dial("lrc")
		if err != nil {
			b.Error(err)
			return
		}
		defer c.Close()
		i := 0
		for pb.Next() {
			i++
			if _, err := c.GetTargets(ctx, gen.Logical(i * 7919 % benchCatalog)); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkFig7NativeQuery measures the same lookup issued directly against
// the database layer — the "native MySQL" baseline of Figure 7.
func BenchmarkFig7NativeQuery(b *testing.B) {
	dep, node, gen := benchLRC(b, storage.PersonalityMySQL)
	_ = dep
	db := node.LRC.DB()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.GetTargets(gen.Logical(i * 7919 % benchCatalog)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8PostgresChurn measures add+delete cycles of the same name
// under the PostgreSQL personality, with a vacuum every 1000 cycles — the
// workload whose bloat produces the Figure 8 sawtooth.
func BenchmarkFig8PostgresChurn(b *testing.B) {
	ctx := context.Background()
	dep, node, _ := benchLRC(b, storage.PersonalityPostgres)
	c := benchDial(b, dep, "lrc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.CreateMapping(ctx, "lfn://churn", "pfn://churn"); err != nil {
			b.Fatal(err)
		}
		if err := c.DeleteMapping(ctx, "lfn://churn", "pfn://churn"); err != nil {
			b.Fatal(err)
		}
		if i%1000 == 999 {
			if _, err := node.LRCEngine.VacuumAll(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchRLI builds an RLI preloaded via one full uncompressed update.
func benchRLI(b *testing.B) (*core.Deployment, workload.Names) {
	ctx := context.Background()
	b.Helper()
	dep := core.NewDeployment()
	fast := disk.Fast()
	if _, err := dep.AddServer(core.ServerSpec{Name: "lrc", LRC: true, Disk: &fast}); err != nil {
		b.Fatal(err)
	}
	if _, err := dep.AddServer(core.ServerSpec{Name: "rli", RLI: true, Disk: &fast}); err != nil {
		b.Fatal(err)
	}
	if err := dep.Connect("lrc", "rli", false); err != nil {
		b.Fatal(err)
	}
	gen := workload.Names{Space: "bench"}
	c, err := dep.Dial("lrc")
	if err != nil {
		b.Fatal(err)
	}
	if err := workload.Load(ctx, c, gen, benchCatalog, 1000); err != nil {
		b.Fatal(err)
	}
	c.Close()
	node, _ := dep.Node("lrc")
	for _, res := range node.LRC.ForceUpdate(ctx) {
		if res.Err != nil {
			b.Fatal(res.Err)
		}
	}
	b.Cleanup(dep.Close)
	return dep, gen
}

// BenchmarkFig9RLIQuery measures queries against a database-backed RLI.
func BenchmarkFig9RLIQuery(b *testing.B) {
	ctx := context.Background()
	dep, gen := benchRLI(b)
	c := benchDial(b, dep, "rli")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RLIQuery(ctx, gen.Logical(i * 7919 % benchCatalog)); err != nil {
			b.Fatal(err)
		}
	}
}

// benchBloomRLI builds an RLI holding `filters` in-memory Bloom filters.
func benchBloomRLI(b *testing.B, filters int) *core.Deployment {
	ctx := context.Background()
	b.Helper()
	dep := core.NewDeployment()
	fast := disk.Fast()
	node, err := dep.AddServer(core.ServerSpec{Name: "rli", RLI: true, Disk: &fast})
	if err != nil {
		b.Fatal(err)
	}
	for f := 0; f < filters; f++ {
		bf := bloom.New(benchCatalog)
		gen := workload.Names{Space: fmt.Sprintf("lrc%03d", f)}
		for i := 0; i < benchCatalog; i++ {
			bf.Add(gen.Logical(i))
		}
		data, err := bf.Bitmap().MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		if err := node.RLI.HandleBloom(ctx, fmt.Sprintf("rls://lrc%03d", f), data); err != nil {
			b.Fatal(err)
		}
	}
	b.Cleanup(dep.Close)
	return dep
}

// BenchmarkFig10BloomQuery measures RLI queries against 1, 10 and 100
// resident Bloom filters (the Figure 10 series).
func BenchmarkFig10BloomQuery(b *testing.B) {
	ctx := context.Background()
	for _, filters := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("filters=%d", filters), func(b *testing.B) {
			dep := benchBloomRLI(b, filters)
			c := benchDial(b, dep, "rli")
			gen := workload.Names{Space: "lrc000"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.RLIQuery(ctx, gen.Logical(i * 7919 % benchCatalog)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig11BulkQuery measures one 1000-name bulk query per iteration
// (throughput per individual lookup is rate * 1000).
func BenchmarkFig11BulkQuery(b *testing.B) {
	ctx := context.Background()
	dep, _, gen := benchLRC(b, storage.PersonalityMySQL)
	c := benchDial(b, dep, "lrc")
	names := make([]string, 1000)
	for i := range names {
		names[i] = gen.Logical(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.BulkGetTargets(ctx, names); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12UncompressedUpdate measures one full uncompressed soft
// state update of the whole catalog per iteration.
func BenchmarkFig12UncompressedUpdate(b *testing.B) {
	ctx := context.Background()
	dep, _ := benchRLI(b)
	node, _ := dep.Node("lrc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, res := range node.LRC.ForceUpdate(ctx) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}

// benchBloomLink builds an LRC->RLI pair using Bloom updates.
func benchBloomLink(b *testing.B, lrcs int) *core.Deployment {
	ctx := context.Background()
	b.Helper()
	dep := core.NewDeployment()
	fast := disk.Fast()
	if _, err := dep.AddServer(core.ServerSpec{Name: "rli", RLI: true, Disk: &fast}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < lrcs; i++ {
		name := fmt.Sprintf("lrc%d", i)
		if _, err := dep.AddServer(core.ServerSpec{Name: name, LRC: true, Disk: &fast, BloomSizeHint: benchCatalog}); err != nil {
			b.Fatal(err)
		}
		if err := dep.Connect(name, "rli", true); err != nil {
			b.Fatal(err)
		}
		c, err := dep.Dial(name)
		if err != nil {
			b.Fatal(err)
		}
		if err := workload.Load(ctx, c, workload.Names{Space: name}, benchCatalog, 1000); err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
	b.Cleanup(dep.Close)
	return dep
}

// BenchmarkTable3BloomUpdate measures one Bloom filter soft state update per
// iteration (Table 3, second column).
func BenchmarkTable3BloomUpdate(b *testing.B) {
	ctx := context.Background()
	dep := benchBloomLink(b, 1)
	node, _ := dep.Node("lrc0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := node.LRC.ForceUpdateTo(ctx, "rls://rli")
		if err != nil || res.Err != nil {
			b.Fatalf("%v / %v", err, res.Err)
		}
	}
}

// BenchmarkTable3BloomGenerate measures recomputing the Bloom filter from
// the catalog (Table 3, third column: the one-time cost).
func BenchmarkTable3BloomGenerate(b *testing.B) {
	ctx := context.Background()
	dep := benchBloomLink(b, 1)
	node, _ := dep.Node("lrc0")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := node.LRC.RebuildFilter(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig13ConcurrentBloomUpdates measures four LRCs pushing Bloom
// updates to one RLI concurrently — the contention of Figure 13.
func BenchmarkFig13ConcurrentBloomUpdates(b *testing.B) {
	ctx := context.Background()
	const lrcs = 4
	dep := benchBloomLink(b, lrcs)
	nodes := make([]*core.Node, lrcs)
	for i := range nodes {
		nodes[i], _ = dep.Node(fmt.Sprintf("lrc%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for _, n := range nodes {
			wg.Add(1)
			go func(n *core.Node) {
				defer wg.Done()
				res, err := n.LRC.ForceUpdateTo(ctx, "rls://rli")
				if err != nil || res.Err != nil {
					b.Errorf("%v / %v", err, res.Err)
				}
			}(n)
		}
		wg.Wait()
	}
}

// BenchmarkAblationBloomAdd measures incremental Bloom filter maintenance
// (one Add per new name), the property that makes updates a serialization
// cost rather than a recomputation cost.
func BenchmarkAblationBloomAdd(b *testing.B) {
	f := bloom.New(b.N + 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Add(fmt.Sprintf("lfn://bench/%09d", i))
	}
}

// BenchmarkAblationWirePing isolates the protocol + transport round trip.
func BenchmarkAblationWirePing(b *testing.B) {
	ctx := context.Background()
	dep := core.NewDeployment()
	defer dep.Close()
	fast := disk.Fast()
	if _, err := dep.AddServer(core.ServerSpec{Name: "lrc", LRC: true, Disk: &fast}); err != nil {
		b.Fatal(err)
	}
	c := benchDial(b, dep, "lrc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Ping(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPartitionedUpdate measures a partitioned full update
// (regex filtering on the send path) against the same catalog.
func BenchmarkAblationPartitionedUpdate(b *testing.B) {
	ctx := context.Background()
	dep := core.NewDeployment()
	defer dep.Close()
	fast := disk.Fast()
	if _, err := dep.AddServer(core.ServerSpec{Name: "lrc", LRC: true, Disk: &fast}); err != nil {
		b.Fatal(err)
	}
	if _, err := dep.AddServer(core.ServerSpec{Name: "rli", RLI: true, Disk: &fast}); err != nil {
		b.Fatal(err)
	}
	if err := dep.Connect("lrc", "rli", false, `[0-4]$`); err != nil {
		b.Fatal(err)
	}
	c, err := dep.Dial("lrc")
	if err != nil {
		b.Fatal(err)
	}
	if err := workload.Load(ctx, c, workload.Names{Space: "part"}, benchCatalog, 1000); err != nil {
		b.Fatal(err)
	}
	c.Close()
	node, _ := dep.Node("lrc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, res := range node.LRC.ForceUpdate(ctx) {
			if res.Err != nil {
				b.Fatal(res.Err)
			}
		}
	}
}

// BenchmarkAblationBulkVsSingle contrasts 1000 singleton queries with one
// 1000-name bulk query (the Figure 11 effect at benchmark granularity).
func BenchmarkAblationBulkVsSingle(b *testing.B) {
	ctx := context.Background()
	dep, _, gen := benchLRC(b, storage.PersonalityMySQL)
	names := make([]string, 1000)
	for i := range names {
		names[i] = gen.Logical(i)
	}
	b.Run("single-x1000", func(b *testing.B) {
		c := benchDial(b, dep, "lrc")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, n := range names {
				if _, err := c.GetTargets(ctx, n); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("bulk-1000", func(b *testing.B) {
		c := benchDial(b, dep, "lrc")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.BulkGetTargets(ctx, names); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRoundTripSerial measures the lock-step wire round trip: one
// connection, one outstanding request — the baseline the pipelining work
// must not regress.
func BenchmarkRoundTripSerial(b *testing.B) {
	ctx := context.Background()
	dep, _, gen := benchLRC(b, storage.PersonalityMySQL)
	c := benchDial(b, dep, "lrc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.GetTargets(ctx, gen.Logical(i*7919%benchCatalog)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoundTripPipelined measures the same round trip with requests
// multiplexed over a single connection: a pipelined server (MaxInFlight 32)
// and concurrent callers sharing one demultiplexed client.
func BenchmarkRoundTripPipelined(b *testing.B) {
	ctx := context.Background()
	dep := core.NewDeployment()
	fast := disk.Fast()
	if _, err := dep.AddServer(core.ServerSpec{
		Name: "lrc", LRC: true, Disk: &fast, MaxInFlight: 32,
	}); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(dep.Close)
	gen := workload.Names{Space: "bench-pipe"}
	load, err := dep.Dial("lrc")
	if err != nil {
		b.Fatal(err)
	}
	if err := workload.Load(ctx, load, gen, benchCatalog, 1000); err != nil {
		b.Fatal(err)
	}
	load.Close()
	c, err := dep.Dial("lrc", core.DialOptions{MaxInFlight: 32})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	var seq atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := int(seq.Add(1))
			if _, err := c.GetTargets(ctx, gen.Logical(i*7919%benchCatalog)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
