// Command rls is the command-line RLS client, mirroring the operations of
// the paper's Table 1 (the globus-rls-cli analogue).
//
// Usage:
//
//	rls -server 127.0.0.1:39281 <command> [args]
//
// Commands:
//
//	ping
//	info
//	stats                       runtime telemetry (per-op counters, latency percentiles)
//	create <lfn> <pfn>          register a logical name with its first target
//	add <lfn> <pfn>             add another target
//	delete <lfn> <pfn>          remove a mapping
//	get-pfn <lfn>               targets of a logical name (wildcards ok)
//	get-lfn <pfn>               logical names of a target (wildcards ok)
//	rli-query <lfn>             LRCs holding the logical name (wildcards ok)
//	rli-lrcs                    LRCs updating this RLI
//	attr-define <name> <logical|target> <string|int|float|date>
//	attr-add <key> <logical|target> <name> <value>
//	attr-get <key> <logical|target>
//	rli-list                    RLIs this LRC updates
//	rli-add <url> [bloom]       start updating an RLI
//	rli-remove <url>            stop updating an RLI
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/client"
	"repro/internal/glob"
	"repro/internal/wire"
)

func main() {
	var (
		server  = flag.String("server", "127.0.0.1:39281", "RLS server address")
		dn      = flag.String("dn", "", "identity Distinguished Name")
		token   = flag.String("token", "", "identity credential token")
		timeout = flag.Duration("timeout", 30*time.Second, "bound the whole command; 0 disables")
	)
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	c, err := client.Dial(ctx, client.Options{Addr: *server, DN: *dn, Token: *token})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	cmd, rest := args[0], args[1:]
	if err := run(ctx, c, cmd, rest); err != nil {
		fatal(err)
	}
}

func run(ctx context.Context, c *client.Client, cmd string, args []string) error {
	switch cmd {
	case "ping":
		if err := c.Ping(ctx); err != nil {
			return err
		}
		fmt.Println("pong")
	case "info":
		info, err := c.ServerInfo(ctx)
		if err != nil {
			return err
		}
		fmt.Printf("url:            %s\nrole:           %s\nlogical names:  %d\ntarget names:   %d\nmappings:       %d\nindex entries:  %d\nbloom filters:  %d\nuptime:         %s\n",
			info.URL, info.Role, info.LogicalNames, info.TargetNames, info.Mappings,
			info.IndexEntries, info.BloomFilters, time.Duration(info.UptimeSeconds)*time.Second)
	case "stats":
		st, err := c.Stats(ctx)
		if err != nil {
			return err
		}
		printStats(st)
	case "create":
		need(args, 2)
		return c.CreateMapping(ctx, args[0], args[1])
	case "add":
		need(args, 2)
		return c.AddMapping(ctx, args[0], args[1])
	case "delete":
		need(args, 2)
		return c.DeleteMapping(ctx, args[0], args[1])
	case "get-pfn":
		need(args, 1)
		if glob.HasWildcard(args[0]) {
			results, err := c.WildcardTargets(ctx, args[0])
			if err != nil {
				return err
			}
			printResults(results)
			return nil
		}
		names, err := c.GetTargets(ctx, args[0])
		if err != nil {
			return err
		}
		printNames(names)
	case "get-lfn":
		need(args, 1)
		if glob.HasWildcard(args[0]) {
			results, err := c.WildcardLogicals(ctx, args[0])
			if err != nil {
				return err
			}
			printResults(results)
			return nil
		}
		names, err := c.GetLogicals(ctx, args[0])
		if err != nil {
			return err
		}
		printNames(names)
	case "rli-query":
		need(args, 1)
		if glob.HasWildcard(args[0]) {
			results, err := c.RLIWildcardQuery(ctx, args[0])
			if err != nil {
				return err
			}
			printResults(results)
			return nil
		}
		names, err := c.RLIQuery(ctx, args[0])
		if err != nil {
			return err
		}
		printNames(names)
	case "rli-lrcs":
		names, err := c.RLILRCList(ctx)
		if err != nil {
			return err
		}
		printNames(names)
	case "attr-define":
		need(args, 3)
		obj, err := parseObj(args[1])
		if err != nil {
			return err
		}
		typ, err := parseType(args[2])
		if err != nil {
			return err
		}
		return c.DefineAttribute(ctx, args[0], obj, typ)
	case "attr-add":
		need(args, 4)
		obj, err := parseObj(args[1])
		if err != nil {
			return err
		}
		// Resolve the attribute's declared type so "123" stores as a string
		// when the attribute is a string.
		defs, err := c.ListAttributeDefs(ctx, obj)
		if err != nil {
			return err
		}
		var val wire.AttrValue
		found := false
		for _, def := range defs {
			if def.Name == args[2] {
				val, err = parseValueAs(def.Type, args[3])
				if err != nil {
					return err
				}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("attribute %q is not defined for %s objects (use attr-define)", args[2], obj)
		}
		return c.AddAttribute(ctx, args[0], obj, args[2], val)
	case "attr-list":
		need(args, 1)
		obj, err := parseObj(args[0])
		if err != nil {
			return err
		}
		defs, err := c.ListAttributeDefs(ctx, obj)
		if err != nil {
			return err
		}
		for _, def := range defs {
			fmt.Printf("%s %s %s\n", def.Name, def.Obj, def.Type)
		}
	case "attr-get":
		need(args, 2)
		obj, err := parseObj(args[1])
		if err != nil {
			return err
		}
		attrs, err := c.GetAttributes(ctx, args[0], obj, nil)
		if err != nil {
			return err
		}
		for _, a := range attrs {
			fmt.Printf("%s: %s\n", a.Name, formatValue(a.Value))
		}
	case "rli-list":
		targets, err := c.ListRLITargets(ctx)
		if err != nil {
			return err
		}
		for _, t := range targets {
			kind := "full"
			if t.Bloom {
				kind = "bloom"
			}
			fmt.Printf("%s updates=%s patterns=%v\n", t.URL, kind, t.Patterns)
		}
	case "rli-add":
		need(args, 1)
		bloom := len(args) > 1 && args[1] == "bloom"
		return c.AddRLITarget(ctx, wire.RLITarget{URL: args[0], Bloom: bloom})
	case "rli-remove":
		need(args, 1)
		return c.RemoveRLITarget(ctx, args[0])
	default:
		usage()
	}
	return nil
}

func parseObj(s string) (wire.ObjType, error) {
	switch s {
	case "logical", "lfn":
		return wire.ObjLogical, nil
	case "target", "pfn":
		return wire.ObjTarget, nil
	default:
		return 0, fmt.Errorf("unknown object type %q (want logical or target)", s)
	}
}

func parseType(s string) (wire.AttrType, error) {
	switch s {
	case "string":
		return wire.AttrString, nil
	case "int":
		return wire.AttrInt, nil
	case "float":
		return wire.AttrFloat, nil
	case "date":
		return wire.AttrDate, nil
	default:
		return 0, fmt.Errorf("unknown attribute type %q", s)
	}
}

// parseValueAs parses the value text per the attribute's declared type.
func parseValueAs(typ wire.AttrType, s string) (wire.AttrValue, error) {
	switch typ {
	case wire.AttrString:
		return wire.AttrValue{Type: typ, S: s}, nil
	case wire.AttrInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return wire.AttrValue{}, fmt.Errorf("attribute wants an int: %w", err)
		}
		return wire.AttrValue{Type: typ, I: i}, nil
	case wire.AttrFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return wire.AttrValue{}, fmt.Errorf("attribute wants a float: %w", err)
		}
		return wire.AttrValue{Type: typ, F: f}, nil
	case wire.AttrDate:
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return wire.AttrValue{}, fmt.Errorf("attribute wants an RFC3339 date: %w", err)
		}
		return wire.AttrValue{Type: typ, I: t.UnixNano()}, nil
	default:
		return wire.AttrValue{}, fmt.Errorf("unknown attribute type %v", typ)
	}
}

func formatValue(v wire.AttrValue) string {
	switch v.Type {
	case wire.AttrString:
		return v.S
	case wire.AttrInt:
		return strconv.FormatInt(v.I, 10)
	case wire.AttrFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case wire.AttrDate:
		return time.Unix(0, v.I).UTC().Format(time.RFC3339)
	default:
		return fmt.Sprintf("%+v", v)
	}
}

// printStats renders the telemetry snapshot: the per-op table maps onto the
// paper's measured operation rates and latencies, the soft-state section onto
// its update-propagation measurements.
func printStats(st *wire.StatsResponse) {
	fmt.Printf("url:          %s\nrole:         %s\nuptime:       %s\nactive conns: %d\nslow ops:     %d\n",
		st.URL, st.Role, time.Duration(st.UptimeSeconds)*time.Second, st.ActiveConns, st.SlowOps)
	if len(st.Ops) > 0 {
		fmt.Printf("\n%-24s %10s %8s %10s %10s %10s %10s %10s\n",
			"op", "count", "errors", "mean", "p50", "p95", "p99", "max")
		for _, o := range st.Ops {
			fmt.Printf("%-24s %10d %8d %10s %10s %10s %10s %10s\n",
				o.Op.String(), o.Count, o.Errors,
				time.Duration(o.MeanNS), time.Duration(o.P50NS),
				time.Duration(o.P95NS), time.Duration(o.P99NS), time.Duration(o.MaxNS))
		}
	}
	if len(st.SoftState) > 0 {
		fmt.Println("\nsoft-state targets:")
		for _, t := range st.SoftState {
			last := "never"
			if t.LastSuccessUnix != 0 {
				last = time.Unix(0, t.LastSuccessUnix).UTC().Format(time.RFC3339)
			}
			fmt.Printf("  %s state=%s sent=%d failed=%d consec_fails=%d skipped=%d probes=%d requeued=%d names=%d bytes=%d last=%s\n",
				t.URL, t.State, t.Sent, t.Failed, t.ConsecFails, t.Skipped, t.Probes,
				t.Requeued, t.NamesSent, t.BytesSent, last)
			if t.NextProbeUnix != 0 {
				fmt.Printf("    next probe: %s\n", time.Unix(0, t.NextProbeUnix).UTC().Format(time.RFC3339Nano))
			}
		}
	}
	fmt.Printf("\nrli: expired=%d stale_answers=%d bloom_filters=%d bloom_bytes=%d\n",
		st.RLIExpired, st.RLIStaleAnswers, st.RLIBloomFilters, st.RLIBloomBytes)
	fmt.Printf("rli sessions: active=%d expired=%d aborted=%d\n",
		st.RLISessionsActive, st.RLISessionsExpired, st.RLISessionsAborted)
	fmt.Printf("storage: wal_appends=%d wal_flushes=%d wal_bytes=%d dead_tuple_visits=%d\n",
		st.WALAppends, st.WALFlushes, st.WALBytes, st.DeadTupleVisits)
	fmt.Printf("group-commit: commits=%d batches=%d syncs_avoided=%d max_batch=%d\n",
		st.GroupCommitCommits, st.GroupCommitBatches, st.GroupCommitSyncsAvoided, st.GroupCommitMaxBatch)
	if len(st.GroupCommitBatchSizes) == 6 {
		b := st.GroupCommitBatchSizes
		fmt.Printf("  batch sizes: =1:%d =2:%d <=4:%d <=8:%d <=16:%d >16:%d\n",
			b[0], b[1], b[2], b[3], b[4], b[5])
	}
	fmt.Printf("latches: waits=%d wait_time=%s\n",
		st.LatchWaits, time.Duration(st.LatchWaitNS))
	fmt.Printf("snapshots: epoch=%d taken=%d published=%d pinned=%d oldest_pinned=%d oldest_pin_age=%s\n",
		st.SnapshotEpoch, st.SnapshotsTaken, st.VersionsPublished, st.SnapshotsPinned,
		st.SnapshotOldestPinned, time.Duration(st.SnapshotOldestPinAgeNS))
	fmt.Printf("pipeline: in_flight=%d max_depth=%d flushes=%d flushes_avoided=%d bad_frame_naks=%d shed=%d\n",
		st.RequestsInFlight, st.PipelineMaxDepth, st.RespFlushes, st.RespFlushesAvoided, st.BadFrameNAKs,
		st.SheddedRequests)
	if len(st.PipelineDepths) == 7 {
		d := st.PipelineDepths
		fmt.Printf("  dispatch depths:  <=1:%d <=2:%d <=4:%d <=8:%d <=16:%d <=64:%d >64:%d\n",
			d[0], d[1], d[2], d[3], d[4], d[5], d[6])
	}
	if len(st.RespBatchSizes) == 7 {
		b := st.RespBatchSizes
		fmt.Printf("  response batches: <=1:%d <=2:%d <=4:%d <=8:%d <=16:%d <=64:%d >64:%d\n",
			b[0], b[1], b[2], b[3], b[4], b[5], b[6])
	}
}

func printNames(names []string) {
	for _, n := range names {
		fmt.Println(n)
	}
}

func printResults(results []wire.BulkNameResult) {
	for _, r := range results {
		for _, v := range r.Values {
			fmt.Printf("%s -> %s\n", r.Name, v)
		}
	}
}

func need(args []string, n int) {
	if len(args) < n {
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: rls [-server addr] <ping|info|stats|create|add|delete|get-pfn|get-lfn|rli-query|rli-lrcs|attr-define|attr-add|attr-get|attr-list|rli-list|rli-add|rli-remove> [args]")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rls: %v\n", err)
	os.Exit(1)
}
