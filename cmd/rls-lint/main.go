// Command rls-lint runs the repo-specific static-analysis suite
// (internal/analysis) over the module and reports invariant violations the
// compiler cannot see. It exits 1 when any diagnostic survives the
// //lint:ignore directives, so `make lint` and CI gate on it.
//
// Usage:
//
//	rls-lint [-json] [-github] [-checkers list] [patterns ...]
//
// Patterns follow the usual shape: ./... (default), ./internal/...,
// ./internal/wire. With -json, one diagnostic object is emitted per line:
//
//	{"file":"internal/x/y.go","line":12,"col":3,"checker":"lockcheck","message":"..."}
//
// With -github, diagnostics are additionally emitted as GitHub Actions
// workflow commands (::error file=...,line=...) so findings annotate the PR
// diff. -checkers selects a comma-separated subset of the suite, e.g.
// -checkers latchcheck,leakcheck; the default runs everything.
//
// Exit codes: 0 clean, 1 findings, 2 usage error, 3 the target packages
// failed to parse or type-check (the lint could not run — distinct from
// "ran and found nothing" so CI never mistakes broken code for clean code).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// suite returns every checker keyed by name.
func suite() map[string]analysis.Checker {
	cs := []analysis.Checker{
		analysis.LockCheck{},
		analysis.AtomicCheck{},
		analysis.DefaultWireCheck(),
		analysis.DefaultCtxCheck(),
		analysis.ErrCheck{},
		analysis.DefaultLatchCheck(),
		analysis.DefaultLeakCheck(),
		analysis.DefaultClockCheck(),
	}
	m := make(map[string]analysis.Checker, len(cs))
	for _, c := range cs {
		m[c.Name()] = c
	}
	return m
}

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic per line")
	github := flag.Bool("github", false, "also emit GitHub Actions ::error annotations")
	sel := flag.String("checkers", "", "comma-separated checkers to run (default: all)")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	all := suite()
	var checkers []analysis.Checker
	if *sel == "" {
		names := make([]string, 0, len(all))
		for name := range all {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			checkers = append(checkers, all[name])
		}
	} else {
		for _, name := range strings.Split(*sel, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			c, ok := all[name]
			if !ok {
				fatal(fmt.Errorf("unknown checker %q (have %s)", name, strings.Join(checkerNames(all), ", ")))
			}
			checkers = append(checkers, c)
		}
		if len(checkers) == 0 {
			fatal(errors.New("-checkers selected nothing"))
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, _, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	prog, err := analysis.Load(root, patterns)
	if err != nil {
		var le *analysis.LoadError
		if errors.As(err, &le) {
			fmt.Fprintf(os.Stderr, "rls-lint: cannot analyze %s: %v\n", le.Path, le.Err)
			os.Exit(3)
		}
		fatal(err)
	}

	diags := analysis.Run(prog, checkers)
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		if *jsonOut {
			line, err := json.Marshal(map[string]any{
				"file":    d.Pos.Filename,
				"line":    d.Pos.Line,
				"col":     d.Pos.Column,
				"checker": d.Checker,
				"message": d.Message,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(line))
		} else {
			fmt.Println(d.String())
		}
		if *github {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=rls-lint %s::%s\n",
				filepath.ToSlash(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Checker, githubEscape(d.Message))
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "rls-lint: %d problem(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func checkerNames(all map[string]analysis.Checker) []string {
	names := make([]string, 0, len(all))
	for name := range all {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// githubEscape applies the workflow-command data escaping rules: %, CR and
// LF must be encoded or the annotation truncates at the first newline.
func githubEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rls-lint:", err)
	os.Exit(2)
}
