// Command rls-lint runs the repo-specific static-analysis suite
// (internal/analysis) over the module and reports invariant violations the
// compiler cannot see. It exits 1 when any diagnostic survives the
// //lint:ignore directives, so `make lint` and CI gate on it.
//
// Usage:
//
//	rls-lint [-json] [patterns ...]
//
// Patterns follow the usual shape: ./... (default), ./internal/...,
// ./internal/wire. With -json, one diagnostic object is emitted per line:
//
//	{"file":"internal/x/y.go","line":12,"col":3,"checker":"lockcheck","message":"..."}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON diagnostic per line")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, _, err := analysis.FindModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	prog, err := analysis.Load(root, patterns)
	if err != nil {
		fatal(err)
	}

	checkers := []analysis.Checker{
		analysis.LockCheck{},
		analysis.AtomicCheck{},
		analysis.DefaultWireCheck(),
		analysis.DefaultCtxCheck(),
		analysis.ErrCheck{},
	}
	diags := analysis.Run(prog, checkers)
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		if *jsonOut {
			line, err := json.Marshal(map[string]any{
				"file":    d.Pos.Filename,
				"line":    d.Pos.Line,
				"col":     d.Pos.Column,
				"checker": d.Checker,
				"message": d.Message,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Println(string(line))
		} else {
			fmt.Println(d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "rls-lint: %d problem(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "rls-lint:", err)
	os.Exit(2)
}
