// Command rls-bench regenerates the tables and figures of the paper's
// evaluation section (§5). Each experiment builds an in-process RLS
// deployment with the appropriate database personality, simulated 2004-era
// disk, and LAN/WAN network shaping, then prints a table shaped like the
// paper's figure.
//
// Usage:
//
//	rls-bench [flags] [experiment ...]
//
// With no experiment arguments, every registered experiment runs. Use
// -list to see the available ids (fig4 ... fig13, table3, ablate-*).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/harness"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list experiments and exit")
		scale      = flag.Float64("scale", 0.02, "fraction of the paper's database sizes (1.0 = 1M-entry LRCs)")
		trials     = flag.Int("trials", 3, "trials per measured point (paper used 5)")
		warmup     = flag.Int("warmup", 1, "discarded warmup trials per measured point")
		ops        = flag.Float64("ops", 1.0, "multiplier on per-point operation counts")
		pipeline   = flag.Int("pipeline", 0, "wire-protocol pipeline depth (0 or 1 = paper's lock-step protocol)")
		quick      = flag.Bool("quick", false, "preset: -scale 0.005 -trials 1 -warmup 0 -ops 0.3")
		noDisk     = flag.Bool("no-disk-model", false, "disable the simulated 2004-era disk costs")
		noNet      = flag.Bool("no-net-model", false, "disable LAN/WAN network shaping")
		verbose    = flag.Bool("v", false, "print per-experiment timing")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
		jsonPath   = flag.String("json", "", "write scenario results as a BENCH_*.json snapshot to this file")
		benchIdx   = flag.Int("bench", 6, "trajectory index recorded in -json snapshots")
		checkJSON  = flag.String("validate-json", "", "validate a BENCH_*.json snapshot and exit")
		diffDir    = flag.String("diff", "", "diff the two newest BENCH_*.json snapshots in this directory and exit")
	)
	flag.Parse()

	if *diffDir != "" {
		if err := benchfmt.DiffDir(os.Stdout, *diffDir); err != nil {
			fmt.Fprintf(os.Stderr, "rls-bench: -diff: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *checkJSON != "" {
		s, err := benchfmt.Load(*checkJSON)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rls-bench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("%s: valid %s snapshot (bench %d, rev %s, %d scenarios)\n",
			*checkJSON, s.Schema, s.Bench, s.GitRev, len(s.Scenarios))
		return
	}

	if *list {
		for _, e := range harness.All() {
			fmt.Printf("%-22s %s\n%-22s   paper: %s\n", e.ID, e.Title, "", e.Paper)
		}
		return
	}

	p := harness.DefaultParams(os.Stdout)
	p.Scale = *scale
	p.Trials = *trials
	p.Warmup = *warmup
	p.Ops = *ops
	if *quick {
		p.Scale = 0.005
		p.Trials = 1
		p.Warmup = 0
		p.Ops = 0.3
	}
	p.DiskModel = !*noDisk
	p.NetModel = !*noNet
	p.Pipeline = *pipeline
	if *jsonPath != "" {
		p.Bench = benchfmt.NewSnapshot(*benchIdx, benchfmt.RunParams{
			Scale: p.Scale, Trials: p.Trials, Ops: p.Ops,
			Pipeline: p.Pipeline, DiskModel: p.DiskModel, NetModel: p.NetModel,
		})
	}

	ids := flag.Args()
	var experiments []harness.Experiment
	if len(ids) == 0 {
		experiments = harness.All()
	} else {
		for _, id := range ids {
			e, ok := harness.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "rls-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			experiments = append(experiments, e)
		}
	}

	stopCPU := func() {}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rls-bench: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "rls-bench: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		// os.Exit skips deferred calls, so the profile is stopped
		// explicitly after the run loop rather than via defer.
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	failed := 0
	for _, e := range experiments {
		start := time.Now()
		if err := e.Run(p); err != nil {
			fmt.Fprintf(os.Stderr, "rls-bench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		if *verbose {
			fmt.Printf("   [%s completed in %.1fs]\n", e.ID, time.Since(start).Seconds())
		}
	}

	stopCPU()

	if *jsonPath != "" {
		// WriteFile validates first, so a run that produced no scenario
		// results (e.g. only fig* experiments selected) fails loudly rather
		// than emitting an empty trajectory point.
		if err := p.Bench.WriteFile(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "rls-bench: -json: %v (include scen-* experiments in the run)\n", err)
			failed++
		} else if *verbose {
			fmt.Printf("   [wrote %s: %d scenarios at rev %s]\n", *jsonPath, len(p.Bench.Scenarios), p.Bench.GitRev)
		}
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rls-bench: memprofile: %v\n", err)
			os.Exit(2)
		}
		runtime.GC() // settle the heap so the profile reflects live objects
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "rls-bench: memprofile: %v\n", err)
			os.Exit(2)
		}
		f.Close()
	}

	if failed > 0 {
		os.Exit(1)
	}
}
