// Command rls-server runs one or more RLS servers from a topology file —
// the operational entry point corresponding to the paper's Globus RLS server
// daemon.
//
// Usage:
//
//	rls-server -topology deployment.json
//	rls-server -name lrc0 -roles lrc -listen 127.0.0.1:39281
//
// With -topology, every server in the file runs inside this process (the
// harness-style single-host deployment). Without it, flags define one
// server. The process runs until interrupted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
	"repro/internal/membership"
	"repro/internal/storage"
)

func main() {
	var (
		topology = flag.String("topology", "", "topology JSON file; runs every server it defines")
		name     = flag.String("name", "rls0", "server name (single-server mode)")
		roles    = flag.String("roles", "lrc", "comma-separated roles: lrc,rli (single-server mode)")
		listen   = flag.String("listen", "127.0.0.1:39281", "TCP listen address (single-server mode)")
		backend  = flag.String("backend", "mysql", "database personality: mysql or postgres")
		dataDir  = flag.String("data-dir", "", "persist databases under this directory (default: in-memory)")
		fastDisk = flag.Bool("fast-disk", true, "disable the simulated 2004-era disk model")
		flush    = flag.Bool("flush-on-commit", false, "flush every transaction to the (simulated) disk")
		imm      = flag.Bool("immediate-mode", false, "enable incremental soft state updates")
		metrics  = flag.String("metrics-addr", "", "serve JSON telemetry snapshots over HTTP on this address (e.g. 127.0.0.1:9090)")
		idle     = flag.Duration("idle-timeout", 0, "reap connections idle for this long; 0 disables")
		slowOp   = flag.Duration("slow-op-threshold", 0, "warn-log dispatches at or above this duration; 0 disables")
		maxInFl  = flag.Int("max-inflight", 0, "requests dispatched concurrently per connection; 0 or 1 = lock-step")
	)
	flag.Parse()

	var dep *core.Deployment
	if *topology != "" {
		topo, err := membership.ParseFile(*topology)
		if err != nil {
			fatal(err)
		}
		dep, err = topo.Build()
		if err != nil {
			fatal(err)
		}
		for _, s := range topo.Servers {
			node, _ := dep.Node(s.Name)
			addr := node.Addr()
			if addr == "" {
				addr = "(in-process only)"
			}
			fmt.Printf("rls-server: %-12s roles=%-8s addr=%s\n", s.Name, strings.Join(s.Roles, "+"), addr)
		}
	} else {
		spec := core.ServerSpec{
			Name:            *name,
			ListenAddr:      *listen,
			FlushOnCommit:   *flush,
			DataDir:         *dataDir,
			ImmediateMode:   *imm,
			IdleTimeout:     *idle,
			SlowOpThreshold: *slowOp,
			MaxInFlight:     *maxInFl,
			// Surface Warn-and-up diagnostics (slow ops, telemetry
			// summaries) on stderr; per-connection Debug noise stays off.
			Logger: slog.New(slog.NewTextHandler(os.Stderr, nil)),
		}
		for _, r := range strings.Split(*roles, ",") {
			switch strings.TrimSpace(r) {
			case "lrc":
				spec.LRC = true
			case "rli":
				spec.RLI = true
			case "":
			default:
				fatal(fmt.Errorf("unknown role %q", r))
			}
		}
		switch *backend {
		case "mysql":
		case "postgres":
			spec.Personality = storage.PersonalityPostgres
		default:
			fatal(fmt.Errorf("unknown backend %q", *backend))
		}
		if *fastDisk {
			f := disk.Fast()
			spec.Disk = &f
		}
		dep = core.NewDeployment()
		node, err := dep.AddServer(spec)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("rls-server: %s serving %s on %s (backend=%s)\n",
			node.Name, node.Server.Role(), node.Addr(), *backend)
	}
	defer dep.Close()

	if *metrics != "" {
		if _, err := serveMetrics(*metrics, dep); err != nil {
			fatal(err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("rls-server: shutting down")
}

// metricsServer is the scrape endpoint with its bound address.
type metricsServer struct {
	srv  *http.Server
	addr net.Addr
}

func (m *metricsServer) close() error { return m.srv.Close() }

// serveMetrics exposes every node's telemetry snapshot as JSON over HTTP —
// an expvar-style endpoint for scraping without speaking the wire protocol.
// GET /stats returns a map of node name to snapshot. Every timeout a scraper
// can hang on is bounded: a stalled connection (half-sent headers, a slow
// reader, an idle keep-alive) is reclaimed instead of pinning its goroutine
// and file descriptor forever.
func serveMetrics(addr string, dep *core.Deployment) (*metricsServer, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		out := make(map[string]any)
		for _, n := range dep.Nodes() {
			out[n.Name] = n.Server.StatsSnapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	srv := &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go func() {
		if err := srv.Serve(l); err != nil && err != http.ErrServerClosed {
			fmt.Fprintf(os.Stderr, "rls-server: metrics listener: %v\n", err)
		}
	}()
	fmt.Printf("rls-server: metrics on http://%s/stats\n", l.Addr())
	return &metricsServer{srv: srv, addr: l.Addr()}, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rls-server: %v\n", err)
	os.Exit(1)
}
