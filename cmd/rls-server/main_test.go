package main

import (
	"encoding/json"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/disk"
)

func testDeployment(t *testing.T) *core.Deployment {
	t.Helper()
	dep := core.NewDeployment()
	t.Cleanup(dep.Close)
	fast := disk.Fast()
	if _, err := dep.AddServer(core.ServerSpec{Name: "rls0", LRC: true, Disk: &fast}); err != nil {
		t.Fatal(err)
	}
	return dep
}

// TestMetricsServerTimeouts guards the scrape endpoint's timeout discipline:
// without ReadHeaderTimeout/IdleTimeout one stalled scraper connection pins
// its goroutine and file descriptor forever.
func TestMetricsServerTimeouts(t *testing.T) {
	m, err := serveMetrics("127.0.0.1:0", testDeployment(t))
	if err != nil {
		t.Fatal(err)
	}
	defer m.close()
	if m.srv.ReadHeaderTimeout <= 0 {
		t.Error("metrics server has no ReadHeaderTimeout: a stalled header hangs forever")
	}
	if m.srv.IdleTimeout <= 0 {
		t.Error("metrics server has no IdleTimeout: an idle keep-alive conn is never reaped")
	}
	if m.srv.WriteTimeout <= 0 {
		t.Error("metrics server has no WriteTimeout: a slow reader pins the response write")
	}
}

// TestMetricsServerServesStats exercises the endpoint end to end, with a
// stalled scraper connection open the whole time: the stall must not block a
// well-behaved scrape.
func TestMetricsServerServesStats(t *testing.T) {
	m, err := serveMetrics("127.0.0.1:0", testDeployment(t))
	if err != nil {
		t.Fatal(err)
	}
	defer m.close()

	// A scraper that connects and goes silent mid-headers.
	stalled, err := net.Dial("tcp", m.addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()
	if _, err := stalled.Write([]byte("GET /stats HTTP/1.1\r\n")); err != nil {
		t.Fatal(err)
	}

	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get("http://" + m.addr.String() + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats = %d, want 200", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]json.RawMessage
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("stats response is not JSON: %v\n%s", err, body)
	}
	if _, ok := out["rls0"]; !ok {
		t.Fatalf("stats response missing node rls0: %s", body)
	}
}
