// Command rls-loadgen drives load against a running RLS server over TCP —
// the standalone analogue of the paper's multi-threaded C test client (§4:
// "a multi-threaded client program ... that allows the user to specify the
// number of threads that submit requests to a server and the types of
// operations to perform").
//
// Closed-loop mode (the paper's methodology — each thread issues its next
// request as soon as the previous one completes):
//
//	rls-loadgen -server 127.0.0.1:39281 -op query -clients 10 -threads 10 -ops 20000
//
// Open-loop mode (rate-driven; latency is measured from each request's
// intended start so server-side queueing is never hidden — selected by
// -rate or -scenario):
//
//	rls-loadgen -server 127.0.0.1:39281 -rate 2000 -arrival poisson -zipf 0.9 -duration 5s
//	rls-loadgen -server 127.0.0.1:39281 -scenario flash -rate 1000 -json BENCH.json
//
// Operations: add, delete, query, rli-query, bulk-query, mixed (open-loop
// supports add, delete, query, mixed). Scenarios: steady, flash, storm,
// churn, tenants. The tool prints the measured rate and latency
// distribution; -trials runs the closed-loop measurement several times and
// reports the mean, per the paper's methodology. Exit status is nonzero if
// any trial or phase saw request errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/client"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	var (
		server   = flag.String("server", "127.0.0.1:39281", "RLS server address")
		op       = flag.String("op", "query", "operation: add, delete, query, rli-query, bulk-query, mixed")
		clients  = flag.Int("clients", 1, "simulated client processes (open-loop: logical clients)")
		threads  = flag.Int("threads", 10, "threads per client (open-loop: connections)")
		pipeline = flag.Int("pipeline", 0, "requests kept in flight per connection (0 or 1 = lock-step; open-loop default 16)")
		ops      = flag.Int("ops", 20000, "total operations per trial (closed-loop)")
		trials   = flag.Int("trials", 5, "measurement trials (closed-loop)")
		space    = flag.String("space", "loadgen", "name-space for generated names")
		size     = flag.Int("preload", 0, "bulk-load this many mappings before measuring")
		dn       = flag.String("dn", "", "identity Distinguished Name")
		token    = flag.String("token", "", "identity credential token")

		rate     = flag.Float64("rate", 0, "open-loop offered rate in ops/s (selects open-loop mode)")
		arrival  = flag.String("arrival", "poisson", "open-loop arrival process: constant or poisson")
		zipf     = flag.Float64("zipf", 0.9, "open-loop Zipf skew of query keys (0 = uniform)")
		scenario = flag.String("scenario", "", "run a predefined open-loop scenario: steady, flash, storm, churn, tenants")
		duration = flag.String("duration", "5s", "open-loop duration per phase")
		jsonPath = flag.String("json", "", "write open-loop results as a BENCH_*.json snapshot to this file")
	)
	flag.Parse()

	pipe := *pipeline
	openLoop := *rate > 0 || *scenario != ""
	if openLoop && pipe < 1 {
		pipe = 16 // open-loop multiplexing needs pipelined connections
	}
	dial := func() (*client.Client, error) {
		return client.Dial(ctx, client.Options{Addr: *server, DN: *dn, Token: *token, MaxInFlight: pipe})
	}
	gen := workload.Names{Space: *space}

	catalog := *size
	if catalog == 0 {
		if openLoop {
			catalog = 10_000 // scenarios query the preloaded catalog; load a default
			*size = catalog
		} else {
			catalog = *ops
		}
	}
	if *size > 0 {
		c, err := dial()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("preloading %d mappings...\n", *size)
		if err := workload.Load(ctx, c, gen, *size, 1000); err != nil {
			c.Close()
			fatal(err)
		}
		c.Close()
	}

	if openLoop {
		runOpenLoop(ctx, dial, gen, catalog, *op, *rate, *arrival, *zipf, *scenario,
			*duration, *jsonPath, *clients, *threads, pipe)
		return
	}

	// ---- closed-loop (the paper's methodology) ----

	drv := &workload.Driver{Clients: *clients, ThreadsPerClient: *threads, Pipeline: pipe, Dial: dial}
	// Fresh-key span per trial: adds in trial t draw from
	// [catalog+t*span, catalog+(t+1)*span) so no trial re-creates a name an
	// earlier trial already registered. The span covers the driver's
	// round-up to one op per worker.
	span := *ops
	if workers := *clients * *threads * max(pipe, 1); span < workers {
		span = workers
	}

	makeTrialOps := func(trial int) (func(worker int) workload.Op, error) {
		base := catalog + trial*span
		switch *op {
		case "add":
			return flat(func(ctx context.Context, c *client.Client, seq int) error {
				return c.CreateMapping(ctx, gen.Logical(base+seq), gen.Target(base+seq, 0))
			}), nil
		case "delete":
			return flat(func(ctx context.Context, c *client.Client, seq int) error {
				return c.DeleteMapping(ctx, gen.Logical(seq%catalog), gen.Target(seq%catalog, 0))
			}), nil
		case "query":
			return flat(func(ctx context.Context, c *client.Client, seq int) error {
				_, err := c.GetTargets(ctx, gen.Logical(seq*7919%catalog))
				return err
			}), nil
		case "rli-query":
			return flat(func(ctx context.Context, c *client.Client, seq int) error {
				_, err := c.RLIQuery(ctx, gen.Logical(seq*7919%catalog))
				return err
			}), nil
		case "bulk-query":
			return flat(func(ctx context.Context, c *client.Client, seq int) error {
				names := make([]string, 1000)
				for i := range names {
					names[i] = gen.Logical((seq*1000 + i) % catalog)
				}
				_, err := c.BulkGetTargets(ctx, names)
				return err
			}), nil
		case "mixed":
			// Per-worker factory: deletes target the key this worker most
			// recently created, so no worker races another's registrations
			// (and nothing depends on cross-worker sequence adjacency).
			return func(worker int) workload.Op {
				pending := -1
				return func(ctx context.Context, c *client.Client, seq int) error {
					switch seq % 4 {
					case 0:
						key := base + seq
						if err := c.CreateMapping(ctx, gen.Logical(key), gen.Target(key, 0)); err != nil {
							return err
						}
						pending = key
						return nil
					case 1:
						if pending < 0 {
							_, err := c.GetTargets(ctx, gen.Logical(seq*7919%catalog))
							return err
						}
						key := pending
						pending = -1
						return c.DeleteMapping(ctx, gen.Logical(key), gen.Target(key, 0))
					default:
						_, err := c.GetTargets(ctx, gen.Logical(seq*7919%catalog))
						return err
					}
				}
			}, nil
		default:
			return nil, fmt.Errorf("unknown op %q", *op)
		}
	}
	if _, err := makeTrialOps(0); err != nil {
		fatal(err)
	}

	fmt.Printf("op=%s clients=%d threads/client=%d pipeline=%d ops/trial=%d trials=%d\n",
		*op, *clients, *threads, pipe, *ops, *trials)
	var totalErrors int // accumulated across every trial, not just the last
	sum, err := workload.Trials(*trials, func(trial int) (float64, error) {
		mk, err := makeTrialOps(trial)
		if err != nil {
			return 0, err
		}
		res, err := drv.RunFactory(ctx, *ops, mk)
		if err != nil {
			return 0, err
		}
		totalErrors += res.Errors
		fmt.Printf("  trial %d: %.0f ops/s (%d ok, %d errors, p50=%v p95=%v p99=%v)\n",
			trial+1, res.Rate, res.Ops, res.Errors,
			res.Latencies.P50, res.Latencies.P95, res.Latencies.P99)
		return res.Rate, nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mean rate: %.0f ops/s (sd %.0f over %d trials)\n", sum.Mean, sum.StdDev, sum.N)
	if totalErrors > 0 {
		fmt.Fprintf(os.Stderr, "rls-loadgen: %d request errors across %d trials\n", totalErrors, sum.N)
		os.Exit(1)
	}
}

// flat lifts a worker-independent op into a factory.
func flat(op workload.Op) func(worker int) workload.Op {
	return func(int) workload.Op { return op }
}

// runOpenLoop executes an open-loop scenario (predefined via -scenario, or
// a single phase synthesized from -op/-rate/-arrival/-zipf) and prints
// per-phase offered vs achieved rate with intended-start latencies.
func runOpenLoop(ctx context.Context, rawDial func() (*client.Client, error), gen workload.Names,
	catalog int, op string, r float64, arrival string, zipf float64, scenario, durStr, jsonPath string,
	clients, conns, depth int) {
	dial := func() (workload.Conn, error) { return rawDial() }
	if r <= 0 {
		r = 1000 // -scenario without -rate: a moderate default
	}
	dur, err := time.ParseDuration(durStr)
	if err != nil || dur <= 0 {
		fatal(fmt.Errorf("bad -duration %q", durStr))
	}

	var sc workload.Scenario
	if scenario != "" {
		sc, err = workload.ScenarioByName(scenario, r, dur)
		if err != nil {
			fatal(err)
		}
	} else {
		mix, err := mixFor(op)
		if err != nil {
			fatal(err)
		}
		sc = workload.Scenario{Name: op, Phases: []workload.Phase{{
			Name: op, Rate: r, Duration: dur, Arrival: arrival, Mix: mix, Theta: zipf,
		}}}
	}

	logical := clients
	if logical <= 1 {
		logical = 0 // let the engine default to conns*depth
	}
	cfg := workload.ScenarioConfig{
		Gen:     gen,
		Catalog: catalog,
		Clients: logical,
		Conns:   conns,
		Depth:   depth,
		Seed:    1,
		Dial:    dial,
	}
	fmt.Printf("open-loop scenario=%s rate=%.0f/s duration/phase=%v conns=%d depth=%d catalog=%d\n",
		sc.Name, r, dur, conns, depth, catalog)
	results, err := workload.RunScenario(ctx, sc, cfg)
	if err != nil {
		fatal(err)
	}

	var totalErrors int64
	for _, pr := range results {
		res, d := pr.Result, pr.Result.Latencies
		totalErrors += res.Errors
		fmt.Printf("  phase %-8s offered %6.0f/s achieved %6.0f/s ops=%d errors=%d p50=%v p95=%v p99=%v p99.9=%v max=%v genlag=%v\n",
			pr.Phase.Name, res.OfferedRate, res.AchievedRate, res.Issued, res.Errors,
			d.P50, d.P95, d.P99, d.P999, d.Max, res.MaxGenLag)
	}

	if jsonPath != "" {
		snap := benchfmt.NewSnapshot(6, benchfmt.RunParams{Trials: 1, Ops: 1, Pipeline: depth})
		snap.AddScenario("loadgen-"+sc.Name, sc, cfg, results)
		if err := snap.WriteFile(jsonPath); err != nil {
			fatal(fmt.Errorf("-json: %w", err))
		}
		fmt.Printf("wrote %s (rev %s)\n", jsonPath, snap.GitRev)
	}
	if totalErrors > 0 {
		fmt.Fprintf(os.Stderr, "rls-loadgen: %d request errors\n", totalErrors)
		os.Exit(1)
	}
}

// mixFor maps a -op name to an open-loop operation mix.
func mixFor(op string) (workload.OpMix, error) {
	switch op {
	case "query":
		return workload.OpMix{Query: 1}, nil
	case "add":
		return workload.OpMix{Add: 1}, nil
	case "delete":
		return workload.OpMix{Delete: 1}, nil
	case "mixed":
		return workload.OpMix{Query: 0.5, Add: 0.25, Delete: 0.25}, nil
	}
	return workload.OpMix{}, fmt.Errorf("op %q not supported in open-loop mode (want add, delete, query, mixed)", op)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rls-loadgen: %v\n", err)
	os.Exit(1)
}
