// Command rls-loadgen drives load against a running RLS server over TCP —
// the standalone analogue of the paper's multi-threaded C test client (§4:
// "a multi-threaded client program ... that allows the user to specify the
// number of threads that submit requests to a server and the types of
// operations to perform").
//
// Usage:
//
//	rls-loadgen -server 127.0.0.1:39281 -op query -clients 10 -threads 10 -ops 20000
//
// Operations: add, delete, query, rli-query, bulk-query, mixed.
// The tool prints the measured rate and latency distribution; -trials runs
// the measurement several times and reports the mean, per the paper's
// methodology.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/client"
	"repro/internal/workload"
)

func main() {
	ctx := context.Background()
	var (
		server  = flag.String("server", "127.0.0.1:39281", "RLS server address")
		op      = flag.String("op", "query", "operation: add, delete, query, rli-query, bulk-query, mixed")
		clients = flag.Int("clients", 1, "simulated client processes")
		threads = flag.Int("threads", 10, "threads per client (one connection each)")
		pipeline = flag.Int("pipeline", 0, "requests kept in flight per connection (0 or 1 = lock-step)")
		ops     = flag.Int("ops", 20000, "total operations per trial")
		trials  = flag.Int("trials", 5, "measurement trials")
		space   = flag.String("space", "loadgen", "name-space for generated names")
		size    = flag.Int("preload", 0, "bulk-load this many mappings before measuring")
		dn      = flag.String("dn", "", "identity Distinguished Name")
		token   = flag.String("token", "", "identity credential token")
	)
	flag.Parse()

	dial := func() (*client.Client, error) {
		return client.Dial(ctx, client.Options{Addr: *server, DN: *dn, Token: *token, MaxInFlight: *pipeline})
	}
	gen := workload.Names{Space: *space}

	if *size > 0 {
		c, err := dial()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("preloading %d mappings...\n", *size)
		if err := workload.Load(ctx, c, gen, *size, 1000); err != nil {
			c.Close()
			fatal(err)
		}
		c.Close()
	}

	catalog := *size
	if catalog == 0 {
		catalog = *ops
	}
	var fn workload.Op
	switch *op {
	case "add":
		fn = func(ctx context.Context, c *client.Client, seq int) error {
			return c.CreateMapping(ctx, gen.Logical(catalog+seq), gen.Target(catalog+seq, 0))
		}
	case "delete":
		fn = func(ctx context.Context, c *client.Client, seq int) error {
			return c.DeleteMapping(ctx, gen.Logical(seq%catalog), gen.Target(seq%catalog, 0))
		}
	case "query":
		fn = func(ctx context.Context, c *client.Client, seq int) error {
			_, err := c.GetTargets(ctx, gen.Logical(seq * 7919 % catalog))
			return err
		}
	case "rli-query":
		fn = func(ctx context.Context, c *client.Client, seq int) error {
			_, err := c.RLIQuery(ctx, gen.Logical(seq * 7919 % catalog))
			return err
		}
	case "bulk-query":
		fn = func(ctx context.Context, c *client.Client, seq int) error {
			names := make([]string, 1000)
			for i := range names {
				names[i] = gen.Logical((seq*1000 + i) % catalog)
			}
			_, err := c.BulkGetTargets(ctx, names)
			return err
		}
	case "mixed":
		fn = func(ctx context.Context, c *client.Client, seq int) error {
			switch seq % 4 {
			case 0:
				return c.CreateMapping(ctx, gen.Logical(catalog+seq), gen.Target(catalog+seq, 0))
			case 1:
				return c.DeleteMapping(ctx, gen.Logical(catalog+seq-1), gen.Target(catalog+seq-1, 0))
			default:
				_, err := c.GetTargets(ctx, gen.Logical(seq * 7919 % catalog))
				return err
			}
		}
	default:
		fatal(fmt.Errorf("unknown op %q", *op))
	}

	drv := &workload.Driver{Clients: *clients, ThreadsPerClient: *threads, Pipeline: *pipeline, Dial: dial}
	fmt.Printf("op=%s clients=%d threads/client=%d pipeline=%d ops/trial=%d trials=%d\n",
		*op, *clients, *threads, *pipeline, *ops, *trials)
	var lastErrors int
	sum, err := workload.Trials(*trials, func(trial int) (float64, error) {
		res, err := drv.Run(ctx, *ops, fn)
		if err != nil {
			return 0, err
		}
		lastErrors = res.Errors
		fmt.Printf("  trial %d: %.0f ops/s (%d ok, %d errors, p50=%v p95=%v p99=%v)\n",
			trial+1, res.Rate, res.Ops, res.Errors,
			res.Latencies.P50, res.Latencies.P95, res.Latencies.P99)
		return res.Rate, nil
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("mean rate: %.0f ops/s (sd %.0f over %d trials)\n", sum.Mean, sum.StdDev, sum.N)
	if lastErrors > 0 {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "rls-loadgen: %v\n", err)
	os.Exit(1)
}
