package repro

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestExamplesRun executes every example end to end via `go run`, keeping
// the runnable documentation honest. Each example prints its own progress;
// a non-zero exit or a missing success marker fails the test.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples are integration-scale")
	}
	cases := []struct {
		dir    string
		marker string // substring the example must print on success
	}{
		{"quickstart", "replica:"},
		{"ligo", "found 3 physical replicas"},
		{"esg", "files >= 2MiB"},
		{"pegasus", "resolved 200/200"},
		{"hierarchy", "root knows 4 LRCs"},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", c.dir))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", c.dir, err, out)
			}
			if !strings.Contains(string(out), c.marker) {
				t.Fatalf("example %s output missing %q:\n%s", c.dir, c.marker, out)
			}
		})
	}
}

// TestCLIRoundTrip drives the rls-server and rls binaries over TCP — the
// full operator path.
func TestCLIRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("integration-scale")
	}
	bin := t.TempDir()
	build := func(name, pkg string) string {
		out := filepath.Join(bin, name)
		cmd := exec.Command("go", "build", "-o", out, pkg)
		if b, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", pkg, err, b)
		}
		return out
	}
	serverBin := build("rls-server", "./cmd/rls-server")
	cliBin := build("rls", "./cmd/rls")

	const addr = "127.0.0.1:39399"
	srv := exec.Command(serverBin, "-name", "t", "-roles", "lrc,rli", "-listen", addr)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()

	cli := func(args ...string) string {
		deadline := time.Now().Add(5 * time.Second)
		for {
			out, err := exec.Command(cliBin, append([]string{"-server", addr}, args...)...).CombinedOutput()
			if err == nil {
				return string(out)
			}
			if time.Now().After(deadline) {
				t.Fatalf("rls %v: %v\n%s", args, err, out)
			}
			time.Sleep(100 * time.Millisecond) // server still starting
		}
	}
	if out := cli("ping"); !strings.Contains(out, "pong") {
		t.Fatalf("ping output: %s", out)
	}
	cli("create", "lfn://cli/x", "pfn://cli/x")
	cli("attr-define", "size", "target", "int")
	cli("attr-add", "pfn://cli/x", "target", "size", "4096")
	if out := cli("attr-get", "pfn://cli/x", "target"); !strings.Contains(out, "4096") {
		t.Fatalf("attr-get output: %s", out)
	}
	if out := cli("attr-list", "target"); !strings.Contains(out, "size target int") {
		t.Fatalf("attr-list output: %s", out)
	}
	if out := cli("get-pfn", "lfn://cli/*"); !strings.Contains(out, "pfn://cli/x") {
		t.Fatalf("wildcard output: %s", out)
	}
	if out := cli("info"); !strings.Contains(out, "lrc+rli") {
		t.Fatalf("info output: %s", out)
	}
}
